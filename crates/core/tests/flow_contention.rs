//! The differential/property test layer pinning `lumos_core::flow`.
//!
//! Differentials: a flow that contends with nobody must reproduce the
//! uncontended [`Runner::run`] **bitwise**, and the degenerate
//! topology the uniform model assumes (all flows crossing every link)
//! must reproduce the legacy uniform `1/k` report bit-for-bit.
//!
//! Properties (max-min invariants over randomized topologies): link
//! allocations never exceed capacity, every unsatisfied flow names a
//! saturated bottleneck, shares are invariant under flow input order,
//! and the fairness floor degrades monotonically as flows are added.

use lumos_core::contention::ContentionModel;
use lumos_core::flow::{max_min_shares, FlowRoute, FlowTopology};
use lumos_core::{Platform, PlatformConfig, Runner};
use lumos_dnn::workload::extract_workloads;
use lumos_dnn::zoo;
use proptest::prelude::*;

const PLATFORMS: [Platform; 3] = [Platform::Siph2p5D, Platform::Elec2p5D, Platform::Monolithic];

/// A pseudo-random flow problem built from proptest-drawn raw parts:
/// capacities as drawn, each flow's route from the bits of a mask
/// (clamped into range, never empty).
fn problem_from(caps: &[f64], masks: &[u32]) -> (FlowTopology, Vec<FlowRoute>) {
    let topo = FlowTopology::custom(caps);
    let n = caps.len();
    let routes = masks
        .iter()
        .map(|&mask| {
            let links: Vec<usize> = (0..n).filter(|&l| mask & (1 << (l % 32)) != 0).collect();
            FlowRoute::over(if links.is_empty() { vec![0] } else { links })
        })
        .collect();
    (topo, routes)
}

#[test]
fn solo_flow_reproduces_uncontended_runner_bitwise() {
    let cfg = PlatformConfig::paper_table1();
    let model = zoo::lenet5();
    let workloads = extract_workloads(&model, cfg.precision);
    let runner = Runner::new(cfg.clone());
    for platform in PLATFORMS {
        let topo = FlowTopology::for_platform(&cfg, platform).expect("platform topology");
        // The model's streams touch every compute chiplet in general;
        // a solo flow contends with nobody regardless of its route.
        let chiplets: Vec<usize> = (0..cfg.compute_chiplets()).collect();
        let alloc =
            max_min_shares(&topo, &[topo.route_for_chiplets(&chiplets)]).expect("solo solves");
        assert_eq!(alloc.share(0), 1.0, "{platform:?}: solo share is exactly 1");
        let contention = alloc.contention_for(&topo, 0, 1.0);
        assert!(contention.is_uncontended());
        let flow = runner
            .run_workloads_scaled(&platform, "lenet5", &workloads, &contention)
            .expect("flow-modeled run");
        let base = runner.run(&platform, &model).expect("uncontended run");
        assert_eq!(flow, base, "{platform:?}: bitwise-identical reports");
    }
}

#[test]
fn degenerate_topology_reproduces_uniform_reports_bitwise() {
    let cfg = PlatformConfig::paper_table1();
    let model = zoo::lenet5();
    let workloads = extract_workloads(&model, cfg.precision);
    let runner = Runner::new(cfg.clone());
    for platform in PLATFORMS {
        let topo = FlowTopology::for_platform(&cfg, platform).expect("platform topology");
        // All k flows crossing every link — the topology the uniform
        // model implicitly assumes.
        let all_links: Vec<usize> = (0..topo.links().len()).collect();
        for k in 1usize..=4 {
            let routes: Vec<FlowRoute> =
                (0..k).map(|_| FlowRoute::over(all_links.clone())).collect();
            let alloc = max_min_shares(&topo, &routes).expect("degenerate solves");
            for f in 0..k {
                assert_eq!(
                    alloc.share(f).to_bits(),
                    (1.0 / k as f64).to_bits(),
                    "{platform:?}: share is exactly 1/{k}"
                );
            }
            // The modeled stream: uniform 1/k compute slice, flow-model
            // bandwidth share — which must equal the legacy uniform run.
            let contention =
                ContentionModel::uniform(1.0 / k as f64).with_bandwidth_share(alloc.share(0));
            let flow = runner
                .run_workloads_scaled(&platform, "lenet5", &workloads, &contention)
                .expect("flow-modeled run");
            let uniform = runner
                .run_workloads_scaled(
                    &platform,
                    "lenet5",
                    &workloads,
                    &ContentionModel::of_resident_streams(k),
                )
                .expect("uniform run");
            assert_eq!(flow, uniform, "{platform:?} k={k}: bitwise-identical");
        }
    }
}

#[test]
fn bottleneck_attribution_never_perturbs_the_report() {
    let cfg = PlatformConfig::paper_table1();
    let model = zoo::lenet5();
    let workloads = extract_workloads(&model, cfg.precision);
    let runner = Runner::new(cfg.clone());
    let bare = ContentionModel::of_resident_streams(2);
    let attributed = ContentionModel::of_resident_streams(2).with_bottleneck("hbm", 1024.0);
    for platform in PLATFORMS {
        let a = runner
            .run_workloads_scaled(&platform, "lenet5", &workloads, &bare)
            .expect("bare run");
        let b = runner
            .run_workloads_scaled(&platform, "lenet5", &workloads, &attributed)
            .expect("attributed run");
        assert_eq!(a, b, "{platform:?}: attribution is metadata only");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Acceptance pin: a flow whose route is disjoint from every other
    /// route gets share exactly 1.0, and feeding that share back
    /// through the scaled runner reproduces the uncontended run
    /// bitwise — on a randomly chosen platform, against random
    /// competing traffic on the other links.
    #[test]
    fn disjoint_routes_match_uncontended_runner_bitwise(
        platform_idx in 0usize..3,
        competitors in 1usize..4,
    ) {
        let cfg = PlatformConfig::paper_table1();
        let platform = PLATFORMS[platform_idx];
        let topo = FlowTopology::for_platform(&cfg, platform).expect("platform topology");
        // Synthetic disjointness: give the probe flow its own private
        // link set by extending the platform capacities.
        let mut caps: Vec<f64> = topo.links().iter().map(|l| l.capacity_gbps).collect();
        let probe_link = caps.len();
        caps.push(512.0);
        let synth = FlowTopology::custom(&caps);
        let mut routes = vec![FlowRoute::over(vec![probe_link])];
        // Competitors pile onto the *platform* links, never the probe's.
        let shared: Vec<usize> = (0..probe_link).collect();
        for _ in 0..competitors {
            routes.push(FlowRoute::over(shared.clone()));
        }
        let alloc = max_min_shares(&synth, &routes).expect("solves");
        prop_assert_eq!(alloc.share(0).to_bits(), 1.0f64.to_bits());

        let model = zoo::lenet5();
        let workloads = extract_workloads(&model, cfg.precision);
        let runner = Runner::new(cfg.clone());
        let contention = alloc.contention_for(&synth, 0, 1.0);
        let flow = runner
            .run_workloads_scaled(&platform, "lenet5", &workloads, &contention)
            .expect("flow-modeled run");
        let base = runner.run(&platform, &model).expect("uncontended run");
        prop_assert_eq!(flow, base);
    }

    /// Per-link allocated bandwidth never exceeds capacity.
    #[test]
    fn allocations_respect_capacity(
        caps in proptest::collection::vec(1.0f64..4096.0, 1..6),
        masks in proptest::collection::vec(1u32..64, 1..8),
    ) {
        let (topo, routes) = problem_from(&caps, &masks);
        let alloc = max_min_shares(&topo, &routes).expect("solves");
        for (l, link) in topo.links().iter().enumerate() {
            prop_assert!(
                alloc.link_allocated_gbps(l) <= link.capacity_gbps * (1.0 + 1e-9),
                "link {l}: {} > {}",
                alloc.link_allocated_gbps(l),
                link.capacity_gbps
            );
        }
        for f in 0..routes.len() {
            let share = alloc.share(f);
            prop_assert!(share > 0.0 && share <= 1.0, "share {share} outside (0, 1]");
            alloc.contention_for(&topo, f, 1.0).validate().expect("valid model");
        }
    }

    /// Every unsatisfied flow (share < 1) names a bottleneck link that
    /// is saturated — the max-min optimality certificate.
    #[test]
    fn unsatisfied_flows_have_saturated_bottlenecks(
        caps in proptest::collection::vec(1.0f64..4096.0, 1..6),
        masks in proptest::collection::vec(1u32..64, 2..8),
    ) {
        let (topo, routes) = problem_from(&caps, &masks);
        let alloc = max_min_shares(&topo, &routes).expect("solves");
        for f in 0..routes.len() {
            if alloc.share(f) < 1.0 {
                let b = alloc.bottleneck(f);
                let cap = topo.links()[b].capacity_gbps;
                prop_assert!(
                    alloc.link_allocated_gbps(b) >= cap * (1.0 - 1e-9),
                    "flow {f}: bottleneck {b} not saturated ({} of {cap})",
                    alloc.link_allocated_gbps(b)
                );
            }
        }
    }

    /// Fair shares are invariant under flow input order (up to
    /// rounding: the freeze order permutes the floating-point
    /// subtraction sequence).
    #[test]
    fn shares_invariant_under_input_order(
        caps in proptest::collection::vec(1.0f64..4096.0, 1..6),
        masks in proptest::collection::vec(1u32..64, 2..8),
        rotate in 1usize..8,
    ) {
        let (topo, routes) = problem_from(&caps, &masks);
        let alloc = max_min_shares(&topo, &routes).expect("solves");
        let r = rotate % routes.len();
        let mut rotated = routes.clone();
        rotated.rotate_left(r);
        let alloc_rot = max_min_shares(&topo, &rotated).expect("rotated solves");
        for f in 0..routes.len() {
            let orig = alloc.allocated_gbps(f);
            let rot = alloc_rot.allocated_gbps((f + routes.len() - r) % routes.len());
            prop_assert!(
                (orig - rot).abs() <= 1e-9 * orig.abs().max(1.0),
                "flow {f}: {orig} vs {rot} after rotation"
            );
        }
    }

    /// Monotone degradation: adding a flow never raises the fairness
    /// floor (the worst-off flow's allocation), and piling flows onto
    /// one shared route degrades every share as exactly `1/k`.
    #[test]
    fn adding_flows_degrades_the_fairness_floor(
        caps in proptest::collection::vec(1.0f64..4096.0, 1..6),
        masks in proptest::collection::vec(1u32..64, 2..8),
    ) {
        let (topo, routes) = problem_from(&caps, &masks);
        let mut prev_floor = f64::INFINITY;
        for m in 1..=routes.len() {
            let alloc = max_min_shares(&topo, &routes[..m]).expect("prefix solves");
            let floor = (0..m)
                .map(|f| alloc.allocated_gbps(f))
                .fold(f64::INFINITY, f64::min);
            prop_assert!(
                floor <= prev_floor * (1.0 + 1e-9),
                "floor rose from {prev_floor} to {floor} at m={m}"
            );
            prev_floor = floor;
        }
    }

    /// The degenerate single-route pile-up is exactly `1/k` at every
    /// depth — the bit-exactness the serve-layer differential rests on.
    #[test]
    fn shared_route_shares_are_exactly_one_over_k(
        cap in 1.0f64..4096.0,
        k in 1usize..9,
    ) {
        let topo = FlowTopology::custom(&[cap]);
        let routes: Vec<FlowRoute> = (0..k).map(|_| FlowRoute::over(vec![0])).collect();
        let alloc = max_min_shares(&topo, &routes).expect("solves");
        for f in 0..k {
            prop_assert_eq!(alloc.share(f).to_bits(), (1.0 / k as f64).to_bits());
        }
    }
}
