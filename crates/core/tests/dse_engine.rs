//! End-to-end coverage of the `lumos_dse` engine against the real
//! simulator: parallel sweeps must match the sequential baseline
//! exactly, cache hits must be bit-identical, and warm caches must
//! survive a reopen.

use std::sync::atomic::{AtomicU64, Ordering};

use lumos_core::dse::{self, DseAxes, MemoCache};
use lumos_core::{Platform, PlatformConfig};
use lumos_dnn::zoo;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "lumos-core-dse-{}-{}-{}",
        std::process::id(),
        tag,
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("temp cache dir creates");
    dir
}

#[test]
fn parallel_sweep_matches_sequential_baseline_point_for_point() {
    let base = PlatformConfig::paper_table1();
    let axes = DseAxes::paper_conclusion();
    let model = zoo::lenet5();
    let (sequential, seq_stats) = dse::sweep_with(&base, &axes, &model, 1, None);
    assert_eq!(seq_stats.threads, 1);
    for threads in [2, 4, 7] {
        let (parallel, _) = dse::sweep_with(&base, &axes, &model, threads, None);
        assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(&sequential) {
            assert!(p.bit_eq(s), "threads={threads}: {p:?} != {s:?}");
        }
    }
}

#[test]
fn second_sweep_is_all_cache_hits_and_bit_identical() {
    let base = PlatformConfig::paper_table1();
    let axes = DseAxes::paper_conclusion();
    let model = zoo::lenet5();
    let mut cache = MemoCache::in_memory();
    let (cold, cold_stats) = dse::sweep_with(&base, &axes, &model, 0, Some(&mut cache));
    assert_eq!(cold_stats.evaluated, axes.len());
    assert_eq!(cold_stats.hits, 0);
    let (warm, warm_stats) = dse::sweep_with(&base, &axes, &model, 0, Some(&mut cache));
    assert!(warm_stats.all_hits(), "{warm_stats:?}");
    assert_eq!(warm_stats.evaluated, 0);
    for (w, c) in warm.iter().zip(&cold) {
        assert!(w.bit_eq(c));
    }
}

#[test]
fn persisted_cache_warm_starts_a_fresh_process_state() {
    let dir = temp_dir("warm");
    let base = PlatformConfig::paper_table1();
    let axes = DseAxes {
        wavelengths: vec![16, 64],
        gateways: vec![1, 4],
        mac_scales: vec![1.0],
    };
    let model = zoo::lenet5();
    let cold = {
        let mut cache = MemoCache::persistent(&dir).expect("persistent cache opens");
        let (points, stats) = dse::sweep_with(&base, &axes, &model, 0, Some(&mut cache));
        assert_eq!(stats.evaluated, 4);
        points
    }; // cache dropped => flushed, as at process exit
    let mut cache = MemoCache::persistent(&dir).expect("persistent cache opens");
    assert_eq!(cache.loaded_from_disk(), 4);
    let (warm, stats) = dse::sweep_with(&base, &axes, &model, 0, Some(&mut cache));
    assert!(stats.all_hits());
    for (w, c) in warm.iter().zip(&cold) {
        assert!(w.bit_eq(c));
    }
    std::fs::remove_dir_all(&dir).expect("temp cache dir removes");
}

#[test]
fn infeasible_points_memoize_bit_identically_too() {
    let mut base = PlatformConfig::paper_table1();
    base.phnet.max_laser_dbm = -10.0; // nothing closes
    let axes = DseAxes {
        wavelengths: vec![16, 64],
        gateways: vec![1],
        mac_scales: vec![1.0],
    };
    let model = zoo::lenet5();
    let mut cache = MemoCache::in_memory();
    let (cold, _) = dse::sweep_with(&base, &axes, &model, 0, Some(&mut cache));
    assert!(cold.iter().all(|p| !p.feasible));
    let (warm, stats) = dse::sweep_with(&base, &axes, &model, 0, Some(&mut cache));
    assert!(stats.all_hits());
    for (w, c) in warm.iter().zip(&cold) {
        assert!(w.bit_eq(c));
    }
}

#[test]
fn pareto_front_invariant_to_sweep_point_ordering() {
    let base = PlatformConfig::paper_table1();
    let axes = DseAxes::paper_conclusion();
    let model = zoo::resnet50();
    let mut points = dse::sweep(&base, &axes, &model);
    let front = dse::pareto_front(&points);
    points.reverse();
    assert_eq!(dse::pareto_front(&points), front);
    points.rotate_left(5);
    assert_eq!(dse::pareto_front(&points), front);
}

#[test]
fn point_keys_separate_platforms_models_and_grid_points() {
    let base = PlatformConfig::paper_table1();
    let model = zoo::lenet5();
    let mut keys = std::collections::HashSet::new();
    for platform in Platform::all() {
        for w in [16usize, 32, 64] {
            let cfg = dse::grid_config(&base, w, 4, 1.0);
            assert!(
                keys.insert(dse::point_key(&cfg, &platform, &model)),
                "collision at {platform:?} λ={w}"
            );
        }
    }
    assert!(!keys.insert(dse::point_key(
        &dse::grid_config(&base, 16, 4, 1.0),
        &Platform::Monolithic,
        &model
    )));
}

#[test]
fn explore_refines_around_the_front_incrementally() {
    let base = PlatformConfig::paper_table1();
    let axes = DseAxes {
        wavelengths: vec![16, 32, 64],
        gateways: vec![1, 4],
        mac_scales: vec![1.0],
    };
    let model = zoo::lenet5();
    let mut cache = MemoCache::in_memory();
    let exploration = dse::explore(&base, &axes, &model, 2, &mut cache, 0);
    assert_eq!(exploration.rounds.len(), 2);
    // Round 1 is cold; round 2 re-requests frontier points (hits) plus
    // freshly halved midpoints.
    assert_eq!(exploration.rounds[0].hits, 0);
    assert!(exploration.rounds[1].hits > 0);
    assert!(exploration.points.len() >= axes.len());
    assert!(!exploration.front.is_empty());
    // The returned front is the front of the accumulated point set.
    assert_eq!(exploration.front, dse::pareto_front(&exploration.points));
}
