//! Property-based tests of the platform runner on randomly generated
//! (but valid) convolutional models.

use lumos_core::{Platform, PlatformConfig, Runner};
use lumos_dnn::{Layer, Model, Padding, TensorShape};
use proptest::prelude::*;

/// Strategy: a random small sequential CNN that always shape-checks.
fn random_cnn() -> impl Strategy<Value = Model> {
    let conv = (
        1u32..=3,
        prop::sample::select(vec![1u32, 3, 5, 7]),
        4u32..32,
    );
    (
        8u32..=32, // input H=W
        2u32..=8,  // input channels
        proptest::collection::vec(conv, 1..5),
        4u32..64, // classifier width
    )
        .prop_map(|(hw, c, convs, classes)| {
            let mut m = Model::new("random_cnn", TensorShape::chw(c, hw, hw));
            for (i, (stride, k, out_c)) in convs.into_iter().enumerate() {
                // Keep spatial dims >= 4 so strides always fit.
                let cur = m
                    .tail()
                    .map(|t| m.output_shape_of(t))
                    .unwrap_or(m.input_shape());
                let stride = if cur.h / stride >= 4 { stride } else { 1 };
                m.push(
                    &format!("conv{i}"),
                    Layer::conv(out_c, k, stride, Padding::Same),
                )
                .expect("same-padded conv always fits");
            }
            m.push("gap", Layer::GlobalAvgPool).expect("valid");
            m.push("fc", Layer::dense(classes)).expect("valid");
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every random model runs on every platform, with causal layer
    /// reports and self-consistent totals.
    #[test]
    fn runner_total_consistency(model in random_cnn()) {
        let runner = Runner::new(PlatformConfig::paper_table1());
        for platform in Platform::all() {
            let r = runner.run(&platform, &model).expect("valid model runs");
            prop_assert!(r.total_latency.as_secs_f64() > 0.0);
            prop_assert!(r.energy.total_j() > 0.0);
            prop_assert!(r.bits_moved > 0);
            prop_assert!(r.avg_power_w().is_finite());
            prop_assert!(r.epb_nj().is_finite());
            // Per-layer reports tile the run.
            let mut last = lumos_sim::SimTime::ZERO;
            for l in &r.layers {
                prop_assert!(l.start >= last);
                prop_assert!(l.finish >= l.start);
                last = l.finish;
            }
            prop_assert_eq!(last, r.total_latency);
            // Energy breakdown components are non-negative.
            prop_assert!(r.energy.mac_j >= 0.0);
            prop_assert!(r.energy.network_j >= 0.0);
            prop_assert!(r.energy.memory_j >= 0.0);
            prop_assert!(r.energy.digital_j >= 0.0);
        }
    }

    /// Determinism: two runs of the same model agree exactly.
    #[test]
    fn runner_deterministic(model in random_cnn()) {
        let runner = Runner::new(PlatformConfig::paper_table1());
        let a = runner.run(&Platform::Siph2p5D, &model).expect("valid model runs");
        let b = runner.run(&Platform::Siph2p5D, &model).expect("rerun also runs");
        prop_assert_eq!(a.total_latency, b.total_latency);
        prop_assert_eq!(a.energy, b.energy);
        prop_assert_eq!(a.bits_moved, b.bits_moved);
    }

    /// Doubling precision doubles traffic and never reduces latency.
    #[test]
    fn precision_monotone(model in random_cnn()) {
        let mut cfg8 = PlatformConfig::paper_table1();
        cfg8.precision = lumos_dnn::Precision::int8();
        let mut cfg16 = PlatformConfig::paper_table1();
        cfg16.precision = lumos_dnn::Precision::int16();
        let r8 = Runner::new(cfg8)
            .run(&Platform::Siph2p5D, &model)
            .expect("int8 model runs");
        let r16 = Runner::new(cfg16)
            .run(&Platform::Siph2p5D, &model)
            .expect("int16 model runs");
        prop_assert_eq!(r16.bits_moved, 2 * r8.bits_moved);
        prop_assert!(r16.total_latency >= r8.total_latency);
    }

    /// Prefetching weights never increases latency.
    #[test]
    fn prefetch_monotone(model in random_cnn()) {
        let base = PlatformConfig::paper_table1();
        let mut pre = PlatformConfig::paper_table1();
        pre.calibration.prefetch_weights = true;
        for platform in Platform::all() {
            let without = Runner::new(base.clone())
                .run(&platform, &model)
                .expect("baseline model runs");
            let with = Runner::new(pre.clone())
                .run(&platform, &model)
                .expect("pre-emphasis model runs");
            prop_assert!(
                with.total_latency <= without.total_latency,
                "{platform}: prefetch regressed"
            );
        }
    }
}
