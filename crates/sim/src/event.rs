//! Deterministic event queue for discrete-event simulation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event scheduled at a specific simulated instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotone sequence number used to break ties deterministically
    /// (FIFO among events scheduled for the same instant).
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest event,
// breaking ties by insertion order so same-time events fire FIFO.
impl<E: Eq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E: Eq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A priority queue of timestamped events with deterministic FIFO
/// tie-breaking.
///
/// # Examples
///
/// ```
/// use lumos_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(5), "late");
/// q.push(SimTime::from_ns(1), "early");
/// q.push(SimTime::from_ns(1), "early-second");
///
/// assert_eq!(q.pop().map(|(_, e)| e), Some("early"));
/// assert_eq!(q.pop().map(|(_, e)| e), Some("early-second"));
/// assert_eq!(q.pop().map(|(_, e)| e), Some("late"));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E: Eq> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation clock: the timestamp of the most recently popped
    /// event (zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock — scheduling into
    /// the past indicates a model bug and would silently corrupt causality.
    pub fn push(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} < now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedules `event` to fire `delay` after the current clock.
    pub fn push_after(&mut self, delay: SimTime, event: E) {
        self.push(self.now + delay, event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now, "event queue produced time travel");
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

/// Drives an [`EventQueue`] until it drains or a step budget is exhausted.
///
/// The handler receives the current time, the event, and the queue so it
/// can schedule follow-up events. Returns the number of events processed.
///
/// # Examples
///
/// ```
/// use lumos_sim::{run_until_idle, EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(1), 3u32);
/// let mut fired = Vec::new();
/// let n = run_until_idle(&mut q, usize::MAX, |now, ev, q| {
///     fired.push((now, ev));
///     if ev > 0 {
///         q.push_after(SimTime::from_ns(1), ev - 1);
///     }
/// });
/// assert_eq!(n, 4);
/// assert_eq!(fired.last().map(|&(_, e)| e), Some(0));
/// ```
pub fn run_until_idle<E: Eq>(
    queue: &mut EventQueue<E>,
    max_steps: usize,
    mut handler: impl FnMut(SimTime, E, &mut EventQueue<E>),
) -> usize {
    let mut steps = 0;
    while steps < max_steps {
        let Some((now, ev)) = queue.pop() else { break };
        handler(now, ev, queue);
        steps += 1;
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(3), 'c');
        q.push(SimTime::from_ns(1), 'a');
        q.push(SimTime::from_ns(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(SimTime::from_ns(7), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(5), ());
        q.push(SimTime::from_ns(2), ());
        let mut last = SimTime::ZERO;
        while let Some((t, ())) = q.pop() {
            assert!(t >= last);
            last = t;
            assert_eq!(q.now(), t);
        }
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), ());
        let _ = q.pop();
        q.push(SimTime::from_ns(1), ());
    }

    #[test]
    fn push_after_is_relative() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), 0u8);
        let _ = q.pop();
        q.push_after(SimTime::from_ns(5), 1u8);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(15)));
    }

    #[test]
    fn run_until_idle_respects_budget() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        // A self-perpetuating event stream stops at the step budget.
        let n = run_until_idle(&mut q, 10, |_, (), q| {
            q.push_after(SimTime::from_ns(1), ());
        });
        assert_eq!(n, 10);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, 1);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
