//! Shared-resource models for transfer-granularity network simulation.
//!
//! Both the electrical mesh links and the photonic waveguides serialize
//! whole transfers (layer-sized data streams split into chunks), so the
//! central abstraction is a FIFO bandwidth server: a resource that is busy
//! until some instant and serves queued transfers back-to-back.

use crate::time::{serialization_time, SimTime};

/// A FIFO bandwidth server: one link, waveguide, or port that serializes
/// transfers at a fixed data rate.
///
/// The model is conservative-work FIFO: a transfer submitted at time `t`
/// starts at `max(t, busy_until)` and occupies the resource for
/// `bits / rate`.
///
/// # Examples
///
/// ```
/// use lumos_sim::{resource::BandwidthServer, SimTime};
///
/// let mut link = BandwidthServer::new(10.0); // 10 Gb/s
/// let a = link.serve(SimTime::ZERO, 1_000);  // 100 ns
/// let b = link.serve(SimTime::ZERO, 1_000);  // queues behind a
/// assert_eq!(a.finish, SimTime::from_ns(100));
/// assert_eq!(b.start, a.finish);
/// assert_eq!(b.finish, SimTime::from_ns(200));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandwidthServer {
    rate_gbps_milli: u64, // fixed-point Gb/s * 1000, keeps Eq/determinism
    busy_until: SimTime,
    served_bits: u64,
    busy_ps: u64,
}

/// The outcome of submitting a transfer to a [`BandwidthServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When the transfer began moving.
    pub start: SimTime,
    /// When the last bit was delivered.
    pub finish: SimTime,
    /// Time spent waiting behind earlier transfers.
    pub queue_delay: SimTime,
}

impl BandwidthServer {
    /// Creates a server with the given rate in Gb/s (resolution 1 Mb/s).
    ///
    /// # Panics
    ///
    /// Panics if `rate_gbps` is not strictly positive and finite.
    pub fn new(rate_gbps: f64) -> Self {
        assert!(
            rate_gbps.is_finite() && rate_gbps > 0.0,
            "rate must be positive and finite, got {rate_gbps}"
        );
        let milli = (rate_gbps * 1e3).round().max(1.0) as u64;
        BandwidthServer {
            rate_gbps_milli: milli,
            busy_until: SimTime::ZERO,
            served_bits: 0,
            busy_ps: 0,
        }
    }

    /// Configured data rate in Gb/s.
    pub fn rate_gbps(&self) -> f64 {
        self.rate_gbps_milli as f64 / 1e3
    }

    /// Replaces the data rate (used by reconfigurable networks when the
    /// number of active wavelengths changes). In-flight accounting is
    /// unaffected; only future transfers see the new rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate_gbps` is not strictly positive and finite.
    pub fn set_rate_gbps(&mut self, rate_gbps: f64) {
        assert!(
            rate_gbps.is_finite() && rate_gbps > 0.0,
            "rate must be positive and finite, got {rate_gbps}"
        );
        self.rate_gbps_milli = (rate_gbps * 1e3).round().max(1.0) as u64;
    }

    /// Earliest instant at which a new transfer could start.
    pub fn available_at(&self) -> SimTime {
        self.busy_until
    }

    /// Submits a transfer of `bits` arriving at time `at`; returns its
    /// start/finish grant and updates the server state.
    pub fn serve(&mut self, at: SimTime, bits: u64) -> Grant {
        let start = at.max(self.busy_until);
        let dur = serialization_time(bits, self.rate_gbps());
        let finish = start + dur;
        self.busy_until = finish;
        self.served_bits += bits;
        self.busy_ps += dur.as_ps();
        Grant {
            start,
            finish,
            queue_delay: start.saturating_sub(at),
        }
    }

    /// Total bits served so far.
    pub fn served_bits(&self) -> u64 {
        self.served_bits
    }

    /// Utilization over `[0, end]`: fraction of time the server was busy.
    /// Returns 0 for an empty window.
    pub fn utilization(&self, end: SimTime) -> f64 {
        let w = end.as_ps();
        if w == 0 {
            0.0
        } else {
            (self.busy_ps as f64 / w as f64).min(1.0)
        }
    }

    /// Resets the server to idle at time zero, clearing statistics.
    pub fn reset(&mut self) {
        self.busy_until = SimTime::ZERO;
        self.served_bits = 0;
        self.busy_ps = 0;
    }
}

/// A pool of identical [`BandwidthServer`]s with earliest-available
/// dispatch — models a chiplet with several gateways, or a memory
/// controller with several channels.
///
/// # Examples
///
/// ```
/// use lumos_sim::{resource::ServerPool, SimTime};
///
/// let mut pool = ServerPool::new(2, 10.0); // two 10 Gb/s gateways
/// let a = pool.serve(SimTime::ZERO, 1_000);
/// let b = pool.serve(SimTime::ZERO, 1_000); // lands on the second server
/// assert_eq!(a.finish, b.finish);
/// let c = pool.serve(SimTime::ZERO, 1_000); // queues
/// assert_eq!(c.start, a.finish);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerPool {
    servers: Vec<BandwidthServer>,
    active: usize,
}

impl ServerPool {
    /// Creates `n` servers of `rate_gbps` each, all active.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the rate is invalid.
    pub fn new(n: usize, rate_gbps: f64) -> Self {
        assert!(n > 0, "a server pool needs at least one server");
        ServerPool {
            servers: vec![BandwidthServer::new(rate_gbps); n],
            active: n,
        }
    }

    /// Total number of servers (active + deactivated).
    pub fn capacity(&self) -> usize {
        self.servers.len()
    }

    /// Number of currently active servers.
    pub fn active(&self) -> usize {
        self.active
    }

    /// Activates exactly `n` servers (clamped to `[1, capacity]`); models
    /// ReSiPI-style gateway activation/deactivation.
    pub fn set_active(&mut self, n: usize) {
        self.active = n.clamp(1, self.servers.len());
    }

    /// Aggregate data rate of the active servers in Gb/s.
    pub fn aggregate_rate_gbps(&self) -> f64 {
        self.servers[..self.active]
            .iter()
            .map(BandwidthServer::rate_gbps)
            .sum()
    }

    /// Replaces the per-server rate for all servers.
    pub fn set_rate_gbps(&mut self, rate_gbps: f64) {
        for s in &mut self.servers {
            s.set_rate_gbps(rate_gbps);
        }
    }

    /// Serves `bits` on the active server that can start earliest
    /// (ties broken by lowest index, deterministically).
    pub fn serve(&mut self, at: SimTime, bits: u64) -> Grant {
        let idx = self.servers[..self.active]
            .iter()
            .enumerate()
            .min_by_key(|(i, s)| (s.available_at(), *i))
            .map(|(i, _)| i)
            .expect("pool has at least one active server");
        self.servers[idx].serve(at, bits)
    }

    /// Splits `bits` evenly across all active servers and returns the grant
    /// of the slowest stripe — models striping one layer's weight stream
    /// over several gateways.
    pub fn serve_striped(&mut self, at: SimTime, bits: u64) -> Grant {
        let n = self.active as u64;
        let per = bits / n;
        let rem = bits % n;
        let mut worst: Option<Grant> = None;
        for i in 0..self.active {
            let b = per + if (i as u64) < rem { 1 } else { 0 };
            let g = self.servers[i].serve(at, b);
            worst = Some(match worst {
                None => g,
                Some(w) if g.finish > w.finish => g,
                Some(w) => w,
            });
        }
        worst.expect("pool has at least one active server")
    }

    /// Earliest instant any active server becomes available.
    pub fn available_at(&self) -> SimTime {
        self.servers[..self.active]
            .iter()
            .map(BandwidthServer::available_at)
            .min()
            .expect("pool has at least one active server")
    }

    /// Resets every server to idle, clearing statistics.
    pub fn reset(&mut self) {
        for s in &mut self.servers {
            s.reset();
        }
    }

    /// Total bits served across all servers.
    pub fn served_bits(&self) -> u64 {
        self.servers.iter().map(BandwidthServer::served_bits).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_serialization() {
        let mut s = BandwidthServer::new(1.0); // 1 Gb/s = 1 bit/ns
        let g1 = s.serve(SimTime::ZERO, 100);
        let g2 = s.serve(SimTime::from_ns(10), 50);
        assert_eq!(g1.start, SimTime::ZERO);
        assert_eq!(g1.finish, SimTime::from_ns(100));
        assert_eq!(g2.start, SimTime::from_ns(100));
        assert_eq!(g2.queue_delay, SimTime::from_ns(90));
        assert_eq!(g2.finish, SimTime::from_ns(150));
        assert_eq!(s.served_bits(), 150);
    }

    #[test]
    fn idle_gap_is_not_compressed() {
        let mut s = BandwidthServer::new(1.0);
        let _ = s.serve(SimTime::ZERO, 10);
        let g = s.serve(SimTime::from_ns(100), 10);
        assert_eq!(g.start, SimTime::from_ns(100));
        assert_eq!(g.queue_delay, SimTime::ZERO);
    }

    #[test]
    fn utilization_accounts_busy_time_only() {
        let mut s = BandwidthServer::new(1.0);
        let _ = s.serve(SimTime::ZERO, 100);
        assert!((s.utilization(SimTime::from_ns(200)) - 0.5).abs() < 1e-9);
        assert_eq!(s.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn rate_change_applies_to_future_transfers() {
        let mut s = BandwidthServer::new(1.0);
        let g1 = s.serve(SimTime::ZERO, 100);
        s.set_rate_gbps(2.0);
        let g2 = s.serve(SimTime::ZERO, 100);
        assert_eq!(g1.finish, SimTime::from_ns(100));
        assert_eq!(g2.finish, SimTime::from_ns(150));
    }

    #[test]
    fn pool_prefers_earliest_available() {
        let mut p = ServerPool::new(2, 1.0);
        let g1 = p.serve(SimTime::ZERO, 100);
        let g2 = p.serve(SimTime::ZERO, 10);
        // Second transfer used the idle server.
        assert_eq!(g2.start, SimTime::ZERO);
        let g3 = p.serve(SimTime::ZERO, 10);
        // Third queues on whichever frees first (the 10-bit one).
        assert_eq!(g3.start, SimTime::from_ns(10));
        assert!(g1.finish > g3.start);
    }

    #[test]
    fn pool_deactivation_reduces_throughput() {
        let mut p = ServerPool::new(4, 1.0);
        p.set_active(1);
        assert_eq!(p.active(), 1);
        let g1 = p.serve(SimTime::ZERO, 10);
        let g2 = p.serve(SimTime::ZERO, 10);
        assert_eq!(g2.start, g1.finish); // everything serializes on one server
        p.set_active(0); // clamps to 1
        assert_eq!(p.active(), 1);
        p.set_active(99); // clamps to capacity
        assert_eq!(p.active(), 4);
    }

    #[test]
    fn striping_balances_bits() {
        let mut p = ServerPool::new(4, 1.0);
        let g = p.serve_striped(SimTime::ZERO, 100);
        // 100 bits over 4 servers -> stripes of 25 -> 25 ns.
        assert_eq!(g.finish, SimTime::from_ns(25));
        assert_eq!(p.served_bits(), 100);
    }

    #[test]
    fn striping_uneven_remainder() {
        let mut p = ServerPool::new(3, 1.0);
        let g = p.serve_striped(SimTime::ZERO, 10);
        // stripes 4,3,3 -> slowest 4 ns
        assert_eq!(g.finish, SimTime::from_ns(4));
        assert_eq!(p.served_bits(), 10);
    }

    #[test]
    fn reset_clears_state() {
        let mut p = ServerPool::new(2, 1.0);
        let _ = p.serve(SimTime::ZERO, 1000);
        p.reset();
        assert_eq!(p.served_bits(), 0);
        assert_eq!(p.available_at(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_pool_rejected() {
        let _ = ServerPool::new(0, 1.0);
    }
}
