//! Statistics collectors used by the network and accelerator simulators.

use std::fmt;

use crate::time::SimTime;

/// Online mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use lumos_sim::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.variance() - 4.571428571428571).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample seen (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample seen (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min().unwrap_or(f64::NAN),
            self.max().unwrap_or(f64::NAN)
        )
    }
}

/// Time-weighted average of a piecewise-constant signal (e.g. instantaneous
/// power, queue occupancy, number of active gateways).
///
/// Feed it `(time, new_value)` transitions; it integrates value·dt.
///
/// # Examples
///
/// ```
/// use lumos_sim::{stats::TimeWeighted, SimTime};
///
/// let mut g = TimeWeighted::new(SimTime::ZERO, 0.0);
/// g.set(SimTime::from_ns(10), 4.0); // signal was 0 for 10 ns
/// g.set(SimTime::from_ns(30), 0.0); // signal was 4 for 20 ns
/// assert!((g.average(SimTime::from_ns(40)) - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeWeighted {
    last_time: SimTime,
    value: f64,
    integral: f64, // value * picoseconds
    start: SimTime,
}

impl TimeWeighted {
    /// Starts tracking at `start` with the given initial value.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            last_time: start,
            value: initial,
            integral: 0.0,
            start,
        }
    }

    /// Current value of the signal.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Records that the signal changed to `value` at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the previous transition.
    pub fn set(&mut self, t: SimTime, value: f64) {
        assert!(t >= self.last_time, "time-weighted signal moved backwards");
        self.integral += self.value * (t - self.last_time).as_ps() as f64;
        self.last_time = t;
        self.value = value;
    }

    /// Adds `delta` to the current value at time `t`.
    pub fn add(&mut self, t: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(t, v);
    }

    /// Time-weighted mean over `[start, end]`, extending the final segment
    /// to `end`. Returns the initial value when the window is empty.
    pub fn average(&self, end: SimTime) -> f64 {
        let end = end.max(self.last_time);
        let total = (end - self.start).as_ps() as f64;
        if total == 0.0 {
            return self.value;
        }
        let integral = self.integral + self.value * (end - self.last_time).as_ps() as f64;
        integral / total
    }

    /// The integral of value·time in (value × seconds) over `[start, end]`.
    ///
    /// When the tracked signal is a power in watts this is the energy in
    /// joules.
    pub fn integral_value_seconds(&self, end: SimTime) -> f64 {
        let end = end.max(self.last_time);
        let integral = self.integral + self.value * (end - self.last_time).as_ps() as f64;
        integral / 1e12
    }
}

/// Exact nearest-rank percentile extraction over a sorted copy of the
/// samples — the one implementation every report path shares
/// (`lumos_serve` latency/TTFT/occupancy summaries, bench rollups), so
/// percentile semantics cannot drift between crates.
///
/// Semantics are pinned bit-for-bit to the historical serving-report
/// code: samples sort by `partial_cmp` (finite samples only), the
/// `q`-percentile is `sorted[max(ceil(q·n), 1) - 1]`, and the mean sums
/// in **sorted** order (so it reproduces the pre-refactor float
/// rounding exactly).
///
/// # Examples
///
/// ```
/// use lumos_sim::stats::SortedSamples;
///
/// let s = SortedSamples::from_unsorted(&[3.0, 1.0, 2.0, 4.0]);
/// assert_eq!(s.min(), Some(1.0));
/// assert_eq!(s.percentile(0.50), 2.0);
/// assert_eq!(s.percentile(1.00), 4.0);
/// assert_eq!(s.mean(), 2.5);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SortedSamples {
    sorted: Vec<f64>,
}

impl SortedSamples {
    /// Sorts a copy of `samples` ascending.
    ///
    /// # Panics
    ///
    /// Panics when a sample is NaN (report samples are always finite).
    pub fn from_unsorted(samples: &[f64]) -> Self {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        SortedSamples { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted samples.
    pub fn as_slice(&self) -> &[f64] {
        &self.sorted
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Arithmetic mean, summed in sorted order (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }

    /// Exact nearest-rank `q`-percentile for `q` in `(0, 1]`:
    /// `sorted[max(ceil(q·n), 1) - 1]`. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = (q * self.sorted.len() as f64).ceil() as usize;
        self.sorted[idx.max(1) - 1]
    }
}

/// Nearest-rank percentiles of `samples` at each quantile in `qs` —
/// the free-function face of [`SortedSamples`] for one-shot callers.
///
/// # Examples
///
/// ```
/// use lumos_sim::stats::percentiles;
///
/// let samples: Vec<f64> = (1..=100).map(f64::from).collect();
/// assert_eq!(percentiles(&samples, &[0.50, 0.95, 0.99]), vec![50.0, 95.0, 99.0]);
/// ```
pub fn percentiles(samples: &[f64], qs: &[f64]) -> Vec<f64> {
    let sorted = SortedSamples::from_unsorted(samples);
    qs.iter().map(|&q| sorted.percentile(q)).collect()
}

/// Fixed set of named monotone counters with stable iteration order.
///
/// # Examples
///
/// ```
/// use lumos_sim::stats::Counters;
///
/// let mut c = Counters::new();
/// c.add("packets", 3);
/// c.add("packets", 2);
/// assert_eq!(c.get("packets"), 5);
/// assert_eq!(c.get("unknown"), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    entries: Vec<(String, u64)>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `amount` to the counter named `key`, creating it at zero first
    /// if needed.
    pub fn add(&mut self, key: &str, amount: u64) {
        match self.entries.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v += amount,
            None => self.entries.push((key.to_owned(), amount)),
        }
    }

    /// Increments the counter named `key` by one.
    pub fn incr(&mut self, key: &str) {
        self.add(key, 1);
    }

    /// Current value of `key` (zero when absent).
    pub fn get(&self, key: &str) -> u64 {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map_or(0, |&(_, v)| v)
    }

    /// Iterates over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no counter has been created.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Histogram with logarithmic (power-of-two) latency buckets, suitable for
/// transfer latencies spanning nanoseconds to milliseconds.
///
/// # Examples
///
/// ```
/// use lumos_sim::{stats::LatencyHistogram, SimTime};
///
/// let mut h = LatencyHistogram::new();
/// h.record(SimTime::from_ns(100));
/// h.record(SimTime::from_us(10));
/// assert_eq!(h.count(), 2);
/// assert!(h.quantile(0.5) >= SimTime::from_ns(100));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    // bucket i holds samples with floor(log2(ps)) == i; bucket 0 also
    // holds zero-latency samples.
    buckets: Vec<u64>,
    count: u64,
    total_ps: u128,
    max: SimTime,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; 64],
            count: 0,
            total_ps: 0,
            max: SimTime::ZERO,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, t: SimTime) {
        let ps = t.as_ps();
        let idx = if ps == 0 {
            0
        } else {
            63 - ps.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.total_ps += ps as u128;
        self.max = self.max.max(t);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency (zero when empty).
    pub fn mean(&self) -> SimTime {
        if self.count == 0 {
            SimTime::ZERO
        } else {
            SimTime::from_ps((self.total_ps / self.count as u128) as u64)
        }
    }

    /// Largest sample recorded.
    pub fn max(&self) -> SimTime {
        self.max
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (0 ≤ q ≤ 1). Coarse by construction (power-of-two buckets): intended
    /// for tail inspection, not precise percentiles.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> SimTime {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return SimTime::ZERO;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let hi = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return SimTime::from_ps(hi);
            }
        }
        self.max
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        s.record(1.0);
        assert_eq!(s.mean(), 1.0);
        assert_eq!(s.variance(), 0.0);
        s.record(3.0);
        assert_eq!(s.mean(), 2.0);
        assert!((s.variance() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(3.0));
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..20] {
            a.record(x);
        }
        for &x in &xs[20..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_average_and_energy() {
        // 10 W for 1 ms then 30 W for 1 ms: mean 20 W, energy 40 mJ.
        let mut p = TimeWeighted::new(SimTime::ZERO, 10.0);
        p.set(SimTime::from_ms(1), 30.0);
        let end = SimTime::from_ms(2);
        assert!((p.average(end) - 20.0).abs() < 1e-9);
        assert!((p.integral_value_seconds(end) - 0.04).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_add() {
        let mut g = TimeWeighted::new(SimTime::ZERO, 1.0);
        g.add(SimTime::from_ns(10), 2.0);
        assert_eq!(g.value(), 3.0);
        g.add(SimTime::from_ns(20), -3.0);
        assert_eq!(g.value(), 0.0);
    }

    #[test]
    fn time_weighted_empty_window() {
        let g = TimeWeighted::new(SimTime::from_ns(5), 7.0);
        assert_eq!(g.average(SimTime::from_ns(5)), 7.0);
    }

    #[test]
    fn counters_accumulate() {
        let mut c = Counters::new();
        c.incr("a");
        c.add("b", 10);
        c.incr("a");
        assert_eq!(c.get("a"), 2);
        assert_eq!(c.get("b"), 10);
        assert_eq!(c.len(), 2);
        let keys: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b"]);
    }

    #[test]
    fn histogram_mean_and_quantile() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(SimTime::from_ns(1));
        }
        h.record(SimTime::from_ms(1));
        assert_eq!(h.count(), 100);
        // Median bucket covers the 1 ns samples.
        assert!(h.quantile(0.5) < SimTime::from_ns(3));
        // The tail sees the millisecond outlier.
        assert!(h.quantile(1.0) >= SimTime::from_ms(1));
        assert_eq!(h.max(), SimTime::from_ms(1));
        let mean = h.mean();
        assert!(mean > SimTime::from_ns(1) && mean < SimTime::from_ms(1));
    }

    #[test]
    fn histogram_zero_sample() {
        let mut h = LatencyHistogram::new();
        h.record(SimTime::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), SimTime::ZERO);
    }
}
