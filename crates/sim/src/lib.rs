//! # lumos-sim — discrete-event simulation kernel
//!
//! The simulation substrate shared by every LUMOS network and accelerator
//! model: a picosecond-resolution clock, a deterministic event queue,
//! FIFO bandwidth servers for transfer-granularity link modeling,
//! statistics collectors, and seeded randomness.
//!
//! Design goals:
//!
//! * **Determinism** — identical seeds and inputs produce bit-identical
//!   results; event ties break FIFO, RNG streams are explicit.
//! * **Transfer granularity** — the unit of simulated work is a multi-bit
//!   transfer, not a flit, so full DNN executions (10⁹+ bits) simulate in
//!   milliseconds of wall time.
//!
//! # Examples
//!
//! ```
//! use lumos_sim::{resource::BandwidthServer, EventQueue, SimTime};
//!
//! // Serialize two DMA bursts over a 12 Gb/s optical wavelength.
//! let mut lambda = BandwidthServer::new(12.0);
//! let g1 = lambda.serve(SimTime::ZERO, 4_096);
//! let g2 = lambda.serve(SimTime::ZERO, 4_096);
//! assert!(g2.start == g1.finish);
//!
//! // Drive an event loop.
//! let mut q = EventQueue::new();
//! q.push(g1.finish, "burst 1 done");
//! q.push(g2.finish, "burst 2 done");
//! assert_eq!(q.pop().map(|(_, e)| e), Some("burst 1 done"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::{run_until_idle, EventQueue, Scheduled};
pub use resource::{BandwidthServer, Grant, ServerPool};
pub use rng::SimRng;
pub use stats::{Counters, LatencyHistogram, OnlineStats, TimeWeighted};
pub use time::SimTime;

#[cfg(test)]
mod sendsync {
    use super::*;

    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}

    #[test]
    fn public_types_are_send_sync() {
        assert_send::<SimTime>();
        assert_sync::<SimTime>();
        assert_send::<EventQueue<u64>>();
        assert_sync::<EventQueue<u64>>();
        assert_send::<BandwidthServer>();
        assert_sync::<BandwidthServer>();
        assert_send::<ServerPool>();
        assert_sync::<ServerPool>();
        assert_send::<SimRng>();
        assert_sync::<SimRng>();
    }
}
