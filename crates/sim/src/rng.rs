//! Deterministic random-number utilities for reproducible simulations.
//!
//! Self-contained (no external crates): a xoshiro256++ core seeded via
//! splitmix64, plus the handful of distributions the simulators use.

/// A seeded RNG with helpers for the distributions the simulators use.
///
/// Every simulation entry point takes an explicit seed so that runs are
/// exactly reproducible; `SimRng` centralizes construction so no component
/// reaches for thread-local entropy.
///
/// # Examples
///
/// ```
/// use lumos_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.uniform_u64(100), b.uniform_u64(100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Next raw 64-bit output (xoshiro256++).
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut n2 = s2 ^ s0;
        let mut n3 = s3 ^ s1;
        let n1 = s1 ^ n2;
        let n0 = s0 ^ n3;
        n2 ^= t;
        n3 = n3.rotate_left(45);
        self.state = [n0, n1, n2, n3];
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Derives an independent child RNG; `label` decorrelates streams that
    /// share a parent seed (e.g. per-chiplet process variation).
    pub fn fork(&mut self, label: u64) -> SimRng {
        let s: u64 = self.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from(s)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn uniform_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection (Lemire); bias-free.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo < bound {
                let threshold = bound.wrapping_neg() % bound;
                if lo < threshold {
                    continue;
                }
            }
            return (m >> 64) as u64;
        }
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid range");
        let x = lo + self.unit_f64() * (hi - lo);
        // Guard against rounding up to the excluded endpoint.
        if x >= hi {
            lo
        } else {
            x
        }
    }

    /// Standard-normal sample via Box-Muller (no extra deps).
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.unit_f64().max(f64::MIN_POSITIVE);
        let u2: f64 = self.unit_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or not finite.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev.is_finite() && std_dev >= 0.0, "invalid std dev");
        mean + std_dev * self.standard_normal()
    }

    /// Exponential sample with the given rate (events per unit time) —
    /// the inter-arrival distribution of a Poisson process, used by the
    /// serving simulator's open-loop arrival generators.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate.is_finite() && rate > 0.0, "invalid rate");
        // unit_f64() is in [0, 1), so the argument of ln is in (0, 1].
        -(1.0 - self.unit_f64()).ln() / rate
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.unit_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(1_000_000), b.uniform_u64(1_000_000));
        }
    }

    #[test]
    fn forks_are_decorrelated() {
        let mut root = SimRng::seed_from(1);
        let mut c1 = root.fork(0);
        let mut c2 = root.fork(1);
        let s1: Vec<u64> = (0..10).map(|_| c1.uniform_u64(1000)).collect();
        let s2: Vec<u64> = (0..10).map(|_| c2.uniform_u64(1000)).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::seed_from(99);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean drifted: {mean}");
        assert!((var - 4.0).abs() < 0.3, "variance drifted: {var}");
    }

    #[test]
    fn exponential_moments_and_positivity() {
        let mut r = SimRng::seed_from(42);
        let n = 20_000;
        let rate = 4.0;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.exponential(rate);
            assert!(x >= 0.0 && x.is_finite());
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean drifted: {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-5.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn uniform_f64_in_range() {
        let mut r = SimRng::seed_from(11);
        for _ in 0..1000 {
            let x = r.uniform_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn uniform_u64_covers_small_bounds() {
        let mut r = SimRng::seed_from(17);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.uniform_u64(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "small bound not fully covered");
    }
}
