//! Deterministic random-number utilities for reproducible simulations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG with helpers for the distributions the simulators use.
///
/// Every simulation entry point takes an explicit seed so that runs are
/// exactly reproducible; `SimRng` centralizes construction so no component
/// reaches for thread-local entropy.
///
/// # Examples
///
/// ```
/// use lumos_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.uniform_u64(100), b.uniform_u64(100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child RNG; `label` decorrelates streams that
    /// share a parent seed (e.g. per-chiplet process variation).
    pub fn fork(&mut self, label: u64) -> SimRng {
        let s: u64 = self.inner.gen::<u64>() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from(s)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn uniform_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid range");
        self.inner.gen_range(lo..hi)
    }

    /// Standard-normal sample via Box-Muller (no extra deps).
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.inner.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or not finite.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev.is_finite() && std_dev >= 0.0, "invalid std dev");
        mean + std_dev * self.standard_normal()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(1_000_000), b.uniform_u64(1_000_000));
        }
    }

    #[test]
    fn forks_are_decorrelated() {
        let mut root = SimRng::seed_from(1);
        let mut c1 = root.fork(0);
        let mut c2 = root.fork(1);
        let s1: Vec<u64> = (0..10).map(|_| c1.uniform_u64(1000)).collect();
        let s2: Vec<u64> = (0..10).map(|_| c2.uniform_u64(1000)).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::seed_from(99);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean drifted: {mean}");
        assert!((var - 4.0).abs() < 0.3, "variance drifted: {var}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-5.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn uniform_f64_in_range() {
        let mut r = SimRng::seed_from(11);
        for _ in 0..1000 {
            let x = r.uniform_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }
}
