//! Simulation time as an integer picosecond count.
//!
//! A dedicated newtype keeps wall-clock arithmetic exact and deterministic:
//! at 12 Gb/s one bit lasts ~83 ps, so picosecond resolution comfortably
//! resolves every event in the photonic and electrical network models while
//! `u64` still covers ~213 days of simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant (or span) of simulated time, stored in integer picoseconds.
///
/// `SimTime` is used both as a point on the simulation clock and as a
/// duration; the arithmetic is identical and keeping a single type avoids a
/// proliferation of conversions in hot simulation loops.
///
/// # Examples
///
/// ```
/// use lumos_sim::SimTime;
///
/// let bit = SimTime::from_ps(83);
/// let word = bit * 64;
/// assert_eq!(word.as_ps(), 5312);
/// assert!(word < SimTime::from_ns(6));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant (simulation start).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from integer picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time from integer nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates a time from integer microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Creates a time from integer milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Creates a time from fractional seconds, rounding to the nearest
    /// picosecond. Negative or NaN inputs saturate to zero; positive
    /// infinity saturates to [`SimTime::MAX`].
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimTime::ZERO;
        }
        let ps = secs * 1e12;
        if ps >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ps.round() as u64)
        }
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Time in fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Time in fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time in fractional milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition: clamps at [`SimTime::MAX`].
    #[inline]
    pub fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self`; use
    /// [`SimTime::saturating_sub`] when underflow is expected.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics if `rhs == 0`.
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0s")
        } else if ps < 1_000 {
            write!(f, "{ps}ps")
        } else if ps < 1_000_000 {
            write!(f, "{:.3}ns", self.as_ns_f64())
        } else if ps < 1_000_000_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else if ps < 1_000_000_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else {
            write!(f, "{:.6}s", self.as_secs_f64())
        }
    }
}

/// Converts a frequency in GHz to the corresponding period.
///
/// # Panics
///
/// Panics if `ghz` is not strictly positive and finite.
///
/// # Examples
///
/// ```
/// use lumos_sim::time::period_of_ghz;
/// assert_eq!(period_of_ghz(2.0).as_ps(), 500);
/// ```
pub fn period_of_ghz(ghz: f64) -> SimTime {
    assert!(
        ghz.is_finite() && ghz > 0.0,
        "frequency must be positive and finite, got {ghz}"
    );
    SimTime::from_secs_f64(1.0 / (ghz * 1e9))
}

/// Time to serialize `bits` at `gbps` gigabits per second.
///
/// Rounds up to a whole picosecond so that a transfer never finishes
/// "early" relative to the continuous-time value.
///
/// # Panics
///
/// Panics if `gbps` is not strictly positive and finite.
///
/// # Examples
///
/// ```
/// use lumos_sim::time::serialization_time;
/// // 64 bits at 12 Gb/s is ~5.33 ns.
/// let t = serialization_time(64, 12.0);
/// assert_eq!(t.as_ps(), 5_334);
/// ```
pub fn serialization_time(bits: u64, gbps: f64) -> SimTime {
    assert!(
        gbps.is_finite() && gbps > 0.0,
        "data rate must be positive and finite, got {gbps}"
    );
    // bits / (gbps * 1e9) seconds = bits * 1e3 / gbps picoseconds.
    let ps = (bits as f64) * 1e3 / gbps;
    SimTime::from_ps(ps.ceil() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_ns(1), SimTime::from_ps(1_000));
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1_000));
        assert_eq!(SimTime::from_secs_f64(1e-3), SimTime::from_ms(1));
    }

    #[test]
    fn from_secs_f64_saturates() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::MAX);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(4);
        assert_eq!((a + b).as_ps(), 14_000);
        assert_eq!((a - b).as_ps(), 6_000);
        assert_eq!((a * 3).as_ps(), 30_000);
        assert_eq!((a / 2).as_ps(), 5_000);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(SimTime::MAX.saturating_add(a), SimTime::MAX);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_ns(1);
        let b = SimTime::from_ns(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::from_ps(500).to_string(), "500ps");
        assert_eq!(SimTime::from_ns(5).to_string(), "5.000ns");
        assert_eq!(SimTime::from_us(7).to_string(), "7.000us");
        assert_eq!(SimTime::from_ms(3).to_string(), "3.000ms");
        assert_eq!(SimTime::from_secs_f64(2.5).to_string(), "2.500000s");
        assert_eq!(SimTime::ZERO.to_string(), "0s");
    }

    #[test]
    fn period_of_common_clocks() {
        assert_eq!(period_of_ghz(1.0).as_ps(), 1_000);
        assert_eq!(period_of_ghz(2.0).as_ps(), 500);
        assert_eq!(period_of_ghz(0.5).as_ps(), 2_000);
    }

    #[test]
    fn serialization_rounds_up() {
        // 1 bit at 12 Gb/s = 83.33 ps -> 84 ps.
        assert_eq!(serialization_time(1, 12.0).as_ps(), 84);
        assert_eq!(serialization_time(0, 12.0), SimTime::ZERO);
        // 128 bits at 2 GHz*128-bit bus is handled by caller; raw rate here.
        assert_eq!(serialization_time(1_000, 1.0).as_ps(), 1_000_000);
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn period_rejects_zero() {
        let _ = period_of_ghz(0.0);
    }

    #[test]
    fn sum_iterator() {
        let total: SimTime = (1..=4).map(SimTime::from_ns).sum();
        assert_eq!(total, SimTime::from_ns(10));
    }
}
