//! Property-based tests for the simulation kernel invariants.

use lumos_sim::resource::{BandwidthServer, ServerPool};
use lumos_sim::time::serialization_time;
use lumos_sim::{EventQueue, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order regardless of the
    /// insertion order.
    #[test]
    fn queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_ps(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// Same-timestamp events preserve insertion order (FIFO).
    #[test]
    fn queue_fifo_at_equal_times(n in 1usize..100) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(SimTime::from_ns(42), i);
        }
        let popped: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(popped, (0..n).collect::<Vec<_>>());
    }

    /// A FIFO server never starts a transfer before its arrival, never
    /// overlaps transfers, and conserves bits.
    #[test]
    fn server_is_causal_and_conserving(
        jobs in proptest::collection::vec((0u64..1_000_000, 1u64..100_000), 1..100),
        rate in 1.0f64..100.0,
    ) {
        let mut s = BandwidthServer::new(rate);
        let mut arrivals: Vec<(u64, u64)> = jobs;
        arrivals.sort_by_key(|&(t, _)| t);
        let mut last_finish = SimTime::ZERO;
        let mut total = 0u64;
        for (t, bits) in arrivals {
            let at = SimTime::from_ps(t);
            let g = s.serve(at, bits);
            prop_assert!(g.start >= at, "started before arrival");
            prop_assert!(g.start >= last_finish, "overlapping service");
            prop_assert!(g.finish >= g.start);
            prop_assert_eq!(g.queue_delay, g.start.saturating_sub(at));
            last_finish = g.finish;
            total += bits;
        }
        prop_assert_eq!(s.served_bits(), total);
    }

    /// Serialization time scales linearly in bits (within rounding) and
    /// inversely with rate.
    #[test]
    fn serialization_scaling(bits in 1u64..1_000_000, rate in 1.0f64..64.0) {
        let one = serialization_time(bits, rate).as_ps();
        let two = serialization_time(2 * bits, rate).as_ps();
        prop_assert!(two >= 2 * one - 2 && two <= 2 * one + 2);
        let faster = serialization_time(bits, rate * 2.0).as_ps();
        prop_assert!(faster <= one);
    }

    /// Striping over more servers never finishes later than over fewer.
    #[test]
    fn striping_monotone_in_servers(bits in 1u64..10_000_000, n in 1usize..16) {
        let mut small = ServerPool::new(n, 10.0);
        let mut large = ServerPool::new(n + 1, 10.0);
        let g_small = small.serve_striped(SimTime::ZERO, bits);
        let g_large = large.serve_striped(SimTime::ZERO, bits);
        prop_assert!(g_large.finish <= g_small.finish);
    }

    /// Pool utilization of every server stays within [0, 1].
    #[test]
    fn utilization_bounded(
        jobs in proptest::collection::vec(1u64..100_000, 1..50),
        n in 1usize..8,
    ) {
        let mut p = ServerPool::new(n, 12.0);
        let mut end = SimTime::ZERO;
        for bits in jobs {
            let g = p.serve(end, bits);
            end = g.finish;
        }
        // Aggregate served bits imply utilization <= 1 on each server by
        // construction; sanity-check via a fresh single server.
        let mut s = BandwidthServer::new(12.0);
        let _ = s.serve(SimTime::ZERO, 1000);
        let u = s.utilization(end.max(SimTime::from_ns(1)));
        prop_assert!((0.0..=1.0).contains(&u));
    }
}
