//! Aligned-column table rendering for example and harness output.
//!
//! Every example used to hand-roll `format!` width specifiers; this is
//! the one tiny shared implementation. Column widths adapt to the
//! longest cell, so tables stay aligned when a value outgrows a
//! hard-coded width.

use std::fmt;

/// Horizontal alignment of one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right (labels).
    Left,
    /// Pad on the left (numbers).
    Right,
}

/// An aligned-column table: headers, per-column alignment, and rows.
///
/// # Examples
///
/// ```
/// use lumos_bench::table::{Align, Table};
///
/// let mut t = Table::new(&[("model", Align::Left), ("lat (ms)", Align::Right)]);
/// t.row(vec!["lenet5".into(), format!("{:.3}", 0.0047)]);
/// t.row(vec!["resnet50".into(), format!("{:.3}", 1.068)]);
/// let out = t.render();
/// assert_eq!(out.lines().count(), 3);
/// assert!(out.lines().all(|l| l.len() <= 20));
/// assert!(out.starts_with("model"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given `(header, alignment)` columns.
    pub fn new(columns: &[(&str, Align)]) -> Self {
        Table {
            headers: columns.iter().map(|(h, _)| (*h).to_owned()).collect(),
            aligns: columns.iter().map(|&(_, a)| a).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics when the cell count does not match the column count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders header + rows, columns separated by a single space,
    /// each column padded to its widest cell (trailing spaces
    /// trimmed).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for row in std::iter::once(&self.headers).chain(&self.rows) {
            let mut line = String::new();
            for ((cell, &width), &align) in row.iter().zip(&widths).zip(&self.aligns) {
                if !line.is_empty() {
                    line.push(' ');
                }
                match align {
                    Align::Left => line.push_str(&format!("{cell:<width$}")),
                    Align::Right => line.push_str(&format!("{cell:>width$}")),
                }
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out
    }

    /// Prints [`Table::render`] to stdout.
    pub fn print(&self) {
        print!("{self}");
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_align_to_widest_cell() {
        let mut t = Table::new(&[("name", Align::Left), ("n", Align::Right)]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer-name".into(), "12345".into()]);
        let lines: Vec<String> = t.render().lines().map(String::from).collect();
        assert_eq!(lines[0], "name            n");
        assert_eq!(lines[1], "a               1");
        assert_eq!(lines[2], "longer-name 12345");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn headerless_data_still_renders_header_line() {
        let t = Table::new(&[("x", Align::Right)]);
        assert_eq!(t.render(), "x\n");
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&[("a", Align::Left), ("b", Align::Left)]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn render_is_deterministic() {
        let mut t = Table::new(&[("k", Align::Left), ("v", Align::Right)]);
        t.row(vec!["x".into(), "1.5".into()]);
        assert_eq!(t.render(), t.clone().render());
    }
}
