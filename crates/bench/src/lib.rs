//! # lumos-bench — harnesses regenerating every table and figure
//!
//! Shared helpers for the binaries (`tables`, `fig7`, `breakdown`) and
//! criterion benches that reproduce the paper's evaluation artifacts.
//! See the experiment index in docs/ARCHITECTURE.md for what each
//! harness regenerates.
//!
//! Evaluations run through the `lumos_dse` worker pool: every
//! platform × model cell is independent, so the full Table 2 × platform
//! grid evaluates in parallel with deterministic (paper-order) results.
//! The worker count defaults to the machine's available parallelism and
//! can be pinned with `--threads N` on any harness binary or the
//! `LUMOS_DSE_THREADS` environment variable (useful on CI machines with
//! few cores).
//!
//! # Examples
//!
//! The harness plumbing is reusable: argument parsing for worker
//! counts, ratio formatting, and the aligned-column [`Table`] renderer
//! every example prints through.
//!
//! ```
//! use lumos_bench::{ratio, thread_override_from_args, Align, Table};
//!
//! let args = vec!["--threads".to_string(), "4".to_string()];
//! assert_eq!(thread_override_from_args(args), Some(4));
//! assert_eq!(ratio(34.9, 1.1), "31.7x");
//!
//! let mut t = Table::new(&[("model", Align::Left), ("ms", Align::Right)]);
//! t.row(vec!["lenet5".into(), "0.01".into()]);
//! assert!(t.render().contains("lenet5"));
//! ```

use lumos_core::{summarize, Platform, PlatformConfig, PlatformSummary, RunReport, Runner};
use lumos_dnn::Model;

pub mod attribution;
pub mod sparkline;
pub mod table;

pub use attribution::attribution_table;
pub use sparkline::{metrics_dashboard, sparkline};
pub use table::{Align, Table};

/// Parses a `--threads N` / `--threads=N` override out of a command
/// line. Returns `None` when absent or unparseable (the caller falls
/// back to [`lumos_dse::available_threads`]).
pub fn thread_override_from_args<I: IntoIterator<Item = String>>(args: I) -> Option<usize> {
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            return args.next()?.parse().ok().filter(|&n| n > 0);
        }
        if let Some(v) = arg.strip_prefix("--threads=") {
            return v.parse().ok().filter(|&n| n > 0);
        }
    }
    None
}

/// Removes the `--threads N` / `--threads=N` flag (the syntax
/// [`thread_override_from_args`] consumes) from an argument list,
/// returning the remaining positional arguments — the shared parser for
/// harness binaries that also take positional selectors.
pub fn strip_thread_flags<I: IntoIterator<Item = String>>(args: I) -> Vec<String> {
    let mut out = Vec::new();
    let mut args = args.into_iter().peekable();
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            // Swallow the value only when it actually is a count, so
            // `--threads table3` (missing count) keeps its positional.
            if args.peek().is_some_and(|v| v.parse::<usize>().is_ok()) {
                let _ = args.next();
            }
        } else if !arg.starts_with("--threads=") {
            out.push(arg);
        }
    }
    out
}

/// The worker count for harness runs: the `--threads` CLI override if
/// present, otherwise `LUMOS_DSE_THREADS`/available parallelism.
pub fn bench_threads() -> usize {
    thread_override_from_args(std::env::args()).unwrap_or_else(lumos_dse::available_threads)
}

/// Runs all five Table 2 models on all three platforms, in parallel on
/// [`bench_threads`] workers.
///
/// Returns `(per-platform reports, per-platform summaries)` in the
/// paper's platform order (CrossLight, 2.5D-Elec, 2.5D-SiPh).
///
/// # Panics
///
/// Panics if any simulation fails — the Table 1 configuration is
/// feasible by construction, so a failure is a bug worth crashing on in
/// a harness.
pub fn run_full_evaluation(cfg: &PlatformConfig) -> (Vec<Vec<RunReport>>, Vec<PlatformSummary>) {
    run_full_evaluation_with(cfg, bench_threads())
}

/// [`run_full_evaluation`] with an explicit worker count (0 = default,
/// 1 = the sequential baseline the criterion benches compare against).
pub fn run_full_evaluation_with(
    cfg: &PlatformConfig,
    threads: usize,
) -> (Vec<Vec<RunReport>>, Vec<PlatformSummary>) {
    let models = lumos_dnn::zoo::table2_models();
    let cells: Vec<(Platform, &Model)> = Platform::all()
        .into_iter()
        .flat_map(|p| models.iter().map(move |m| (p, m)))
        .collect();
    let runner = Runner::new(cfg.clone());
    let reports = lumos_dse::parallel_map(&cells, threads, |(platform, model)| {
        runner
            .run(platform, model)
            .expect("Table 1 configuration must simulate")
    });

    let mut all_reports = Vec::new();
    let mut summaries = Vec::new();
    for (chunk, platform) in reports.chunks(models.len()).zip(Platform::all()) {
        let platform_reports: Vec<RunReport> = chunk.to_vec();
        summaries.push(summarize(platform, &platform_reports));
        all_reports.push(platform_reports);
    }
    (all_reports, summaries)
}

/// Formats a ratio as the paper quotes them (`6.6x`).
pub fn ratio(num: f64, den: f64) -> String {
    format!("{:.1}x", num / den)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_evaluation_runs() {
        let (reports, summaries) = run_full_evaluation(&PlatformConfig::paper_table1());
        assert_eq!(reports.len(), 3);
        assert!(reports.iter().all(|r| r.len() == 5));
        assert_eq!(summaries.len(), 3);
    }

    #[test]
    fn parallel_matches_sequential_baseline() {
        let cfg = PlatformConfig::paper_table1();
        let (seq, _) = run_full_evaluation_with(&cfg, 1);
        let (par, _) = run_full_evaluation_with(&cfg, 4);
        for (a_platform, b_platform) in seq.iter().zip(&par) {
            for (a, b) in a_platform.iter().zip(b_platform) {
                assert_eq!(a.model, b.model);
                assert_eq!(a.total_latency, b.total_latency);
                assert_eq!(a.energy, b.energy);
                assert_eq!(a.bits_moved, b.bits_moved);
            }
        }
    }

    #[test]
    fn reports_grouped_in_paper_order() {
        let (reports, summaries) = run_full_evaluation_with(&PlatformConfig::paper_table1(), 2);
        for (platform_reports, platform) in reports.iter().zip(Platform::all()) {
            assert!(platform_reports.iter().all(|r| r.platform == platform));
        }
        assert_eq!(
            summaries.iter().map(|s| s.platform).collect::<Vec<_>>(),
            Platform::all().to_vec()
        );
    }

    #[test]
    fn thread_override_parsing() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            thread_override_from_args(args(&["--threads", "3"])),
            Some(3)
        );
        assert_eq!(thread_override_from_args(args(&["--threads=8"])), Some(8));
        assert_eq!(
            thread_override_from_args(args(&["bench", "--threads", "2"])),
            Some(2)
        );
        assert_eq!(
            thread_override_from_args(args(&["--threads", "zero"])),
            None
        );
        assert_eq!(thread_override_from_args(args(&["--threads=0"])), None);
        assert_eq!(thread_override_from_args(args(&["--threads"])), None);
        assert_eq!(thread_override_from_args(args(&["table3"])), None);
    }

    #[test]
    fn thread_flags_stripped_from_positionals() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            strip_thread_flags(args(&["--threads", "2", "table3"])),
            args(&["table3"])
        );
        assert_eq!(
            strip_thread_flags(args(&["table1", "--threads=4"])),
            args(&["table1"])
        );
        assert!(strip_thread_flags(args(&["--threads", "2"])).is_empty());
        // A missing count must not eat the positional selector.
        assert_eq!(
            strip_thread_flags(args(&["--threads", "table3"])),
            args(&["table3"])
        );
    }

    #[test]
    fn ratio_format() {
        assert_eq!(ratio(33.0, 5.0), "6.6x");
    }
}
