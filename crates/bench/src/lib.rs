//! # lumos-bench — harnesses regenerating every table and figure
//!
//! Shared helpers for the binaries (`tables`, `fig7`) and criterion
//! benches that reproduce the paper's evaluation artifacts. See
//! DESIGN.md §4 for the experiment index.

use lumos_core::{summarize, Platform, PlatformConfig, PlatformSummary, RunReport, Runner};

/// Runs all five Table 2 models on all three platforms.
///
/// Returns `(per-platform reports, per-platform summaries)` in the
/// paper's platform order (CrossLight, 2.5D-Elec, 2.5D-SiPh).
///
/// # Panics
///
/// Panics if any simulation fails — the Table 1 configuration is
/// feasible by construction, so a failure is a bug worth crashing on in
/// a harness.
pub fn run_full_evaluation(cfg: &PlatformConfig) -> (Vec<Vec<RunReport>>, Vec<PlatformSummary>) {
    let runner = Runner::new(cfg.clone());
    let mut all_reports = Vec::new();
    let mut summaries = Vec::new();
    for platform in Platform::all() {
        let reports = runner
            .run_table2(&platform)
            .expect("Table 1 configuration must simulate");
        summaries.push(summarize(platform, &reports));
        all_reports.push(reports);
    }
    (all_reports, summaries)
}

/// Formats a ratio as the paper quotes them (`6.6x`).
pub fn ratio(num: f64, den: f64) -> String {
    format!("{:.1}x", num / den)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_evaluation_runs() {
        let (reports, summaries) = run_full_evaluation(&PlatformConfig::paper_table1());
        assert_eq!(reports.len(), 3);
        assert!(reports.iter().all(|r| r.len() == 5));
        assert_eq!(summaries.len(), 3);
    }

    #[test]
    fn ratio_format() {
        assert_eq!(ratio(33.0, 5.0), "6.6x");
    }
}
