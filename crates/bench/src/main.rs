//! The `lumos-bench` CLI: a machine-readable performance snapshot of
//! the simulator itself.
//!
//! `lumos-bench --json` runs a fixed micro-evaluation — a paper-grid
//! DSE sweep (cold, then warm from the memo), one continuous-batching
//! serving simulation, and the three-platform ResNet-50 runner
//! comparison — and writes **one JSON object to stdout**. CI redirects
//! it to `BENCH_<sha>.json` and archives the artifact, so throughput
//! regressions of the engine itself leave a queryable trail.
//!
//! Schema contract: the key set and order are fixed (`schema` bumps on
//! any change); simulated results (`serve`, `runner`, DSE `front`) are
//! deterministic and byte-stable across reruns, while the wall-clock
//! figures (`*_elapsed_s`, `*_points_per_s`) measure this machine and
//! naturally vary. Headline figures: `dse.cold_points_per_s` (engine
//! evaluation throughput) and `serve.sustained_tokens_per_s` (the
//! simulated platform's decode-token throughput). The header also
//! records the compiling toolchain and every fingerprint key-schema
//! version, so `--diff` can refuse comparisons whose numbers were
//! produced under different semantics.
//!
//! `lumos-bench --diff OLD.json NEW.json` compares two snapshots with
//! [`lumos_prof::diff_snapshots`]: simulated metrics at zero tolerance,
//! wall-clock metrics with slack for host noise. Exit status 1 on any
//! regression, 2 on a refused comparison, 0 otherwise — CI gates on it.
//!
//! ```text
//! cargo run --release -p lumos-bench -- --json > BENCH_local.json
//! lumos-bench --json --threads 2    # pin the worker pool
//! lumos-bench --diff BENCH_old.json BENCH_new.json
//! ```

use std::time::Instant;

use lumos_bench::bench_threads;
use lumos_core::{dse, Platform, PlatformConfig, Runner};
use lumos_dnn::workload::Precision;
use lumos_dse::{DseAxes, MemoCache, SweepStats};
use lumos_metrics::json;
use lumos_prof::diff_snapshots;
use lumos_serve::{simulate, BatchPolicy, ServeConfig, ServedModel, SharePolicy};

/// Bumped whenever the snapshot's key set or meaning changes.
/// (v2: `toolchain` and `key_schemas` header fields for the `--diff`
/// comparability gate.)
const SCHEMA: u64 = 2;

/// The toolchain that compiled this binary (captured by `build.rs`).
const TOOLCHAIN: &str = env!("LUMOS_RUSTC_VERSION");

/// The serving scenario the snapshot times: the CNN + generator mix the
/// serve test suite pins, under continuous batching.
fn serve_config() -> ServeConfig {
    let mix = vec![
        ServedModel::cnn(&lumos_dnn::zoo::lenet5(), Precision::int8(), 600.0, 5.0),
        ServedModel::generator(
            &lumos_xformer::zoo::gpt2_small(),
            32,
            4,
            1,
            Precision::int8(),
            120.0,
            1_000.0,
        ),
    ];
    ServeConfig::new(PlatformConfig::paper_table1(), Platform::Siph2p5D, mix)
        .with_duration_s(0.05)
        .with_seed(7)
        .with_max_concurrency(4)
        .with_batching(BatchPolicy::continuous(3))
        .with_sharing(SharePolicy::SloPressure)
}

/// One timed sweep pass against `cache`.
fn timed_sweep(
    base: &PlatformConfig,
    axes: &DseAxes,
    model: &lumos_dnn::Model,
    threads: usize,
    cache: &mut MemoCache,
) -> (Vec<lumos_dse::DsePoint>, SweepStats, f64) {
    let t0 = Instant::now();
    let (points, stats) = dse::sweep_with(base, axes, model, threads, Some(cache));
    (points, stats, t0.elapsed().as_secs_f64())
}

fn snapshot_json(threads: usize) -> String {
    // DSE throughput: the paper-conclusion grid on ResNet-50, cold
    // (every point simulated) then warm (every point a memo hit).
    let base = PlatformConfig::paper_table1();
    let axes = DseAxes::paper_conclusion();
    let model = lumos_dnn::zoo::resnet50();
    let mut cache = MemoCache::in_memory();
    let (points, cold, cold_s) = timed_sweep(&base, &axes, &model, threads, &mut cache);
    let (_, warm, warm_s) = timed_sweep(&base, &axes, &model, threads, &mut cache);
    assert!(warm.all_hits(), "second sweep must be all cache hits");
    let front: Vec<String> = dse::pareto_front(&points)
        .iter()
        .map(|p| p.to_json())
        .collect();
    let per_s = |n: usize, s: f64| if s > 0.0 { n as f64 / s } else { f64::NAN };
    let dse_obj = json::object(&[
        ("points", cold.points.to_string()),
        ("evaluated", cold.evaluated.to_string()),
        ("cold_elapsed_s", json::num(cold_s)),
        ("cold_points_per_s", json::num(per_s(cold.points, cold_s))),
        ("warm_elapsed_s", json::num(warm_s)),
        ("warm_points_per_s", json::num(per_s(warm.points, warm_s))),
        ("front", format!("[{}]", front.join(","))),
    ]);

    // Serving throughput: deterministic simulated figures plus the
    // wall-clock cost of producing them.
    let cfg = serve_config();
    let t0 = Instant::now();
    let report = simulate(&cfg).expect("snapshot serving scenario must simulate");
    let serve_s = t0.elapsed().as_secs_f64();
    let serve_obj = json::object(&[
        (
            "sustained_tokens_per_s",
            json::num(report.aggregate_tokens_per_s),
        ),
        ("sustained", report.sustained().to_string()),
        ("p99_latency_ms", json::num(report.aggregate_latency.p99_ms)),
        ("elapsed_s", json::num(serve_s)),
        ("report", report.to_json()),
    ]);

    // Runner baseline: the paper's headline model on all three
    // platforms (deterministic; drift here is a simulator change, not
    // noise).
    let runner = Runner::new(base);
    let platforms: Vec<String> = Platform::all()
        .into_iter()
        .map(|p| {
            let r = runner
                .run(&p, &model)
                .expect("Table 1 configuration must simulate");
            json::object(&[
                ("platform", json::string(p.label())),
                ("latency_ms", json::num(r.total_latency.as_secs_f64() * 1e3)),
                ("energy_j", json::num(r.energy.total_j())),
            ])
        })
        .collect();

    json::object(&[
        ("schema", SCHEMA.to_string()),
        ("generator", json::string("lumos-bench")),
        ("toolchain", json::string(TOOLCHAIN)),
        ("threads", threads.to_string()),
        (
            "key_schemas",
            json::object(&[
                ("core", dse::KEY_SCHEMA.to_string()),
                ("serve", lumos_serve::dse::SERVE_KEY_SCHEMA.to_string()),
                (
                    "xformer",
                    lumos_xformer::dse::XFORMER_KEY_SCHEMA.to_string(),
                ),
            ]),
        ),
        ("dse", dse_obj),
        ("serve", serve_obj),
        ("runner", format!("[{}]", platforms.join(","))),
    ])
}

/// The `--diff` subcommand: compares two snapshot files, prints the
/// report, and exits 1 on regression / 2 on a refused comparison.
fn run_diff(old_path: &str, new_path: &str) -> ! {
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("lumos-bench --diff: cannot read '{path}': {e}");
            std::process::exit(2);
        })
    };
    let old = read(old_path);
    let new = read(new_path);
    match diff_snapshots(&old, &new, &lumos_prof::diff::default_rules()) {
        Err(err) => {
            eprintln!("lumos-bench --diff: {err}");
            std::process::exit(2);
        }
        Ok(report) => {
            print!("{}", report.render());
            std::process::exit(if report.has_regressions() { 1 } else { 0 });
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads = bench_threads();
    if args.iter().any(|a| a == "--json") {
        println!("{}", snapshot_json(threads));
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--diff") {
        match (args.get(i + 1), args.get(i + 2)) {
            (Some(old), Some(new)) => run_diff(old, new),
            _ => {
                eprintln!("usage: lumos-bench --diff OLD.json NEW.json");
                std::process::exit(2);
            }
        }
    }
    eprintln!("lumos-bench: machine-readable perf snapshots of the LUMOS simulator");
    eprintln!();
    eprintln!("usage: lumos-bench --json [--threads N]   write one snapshot object to stdout");
    eprintln!("       lumos-bench --diff OLD.json NEW.json");
    eprintln!("                                          compare two snapshots; exit 1 on");
    eprintln!("                                          regression, 2 on refusal");
    eprintln!();
    eprintln!("The dedicated harness binaries regenerate the paper artifacts:");
    eprintln!("  cargo run --release -p lumos-bench --bin tables");
    eprintln!("  cargo run --release -p lumos-bench --bin fig7");
    eprintln!("  cargo run --release -p lumos-bench --bin breakdown");
    std::process::exit(2);
}
