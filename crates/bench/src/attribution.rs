//! Rendering `lumos_trace` attribution summaries as aligned tables.
//!
//! The tracer answers "where does the nanosecond go" with raw
//! [`Attribution`] rows; this module turns them into the same
//! aligned-text [`Table`] every harness and example prints through.

use crate::table::{Align, Table};
use lumos_trace::{Attribution, TraceEvent};

/// Renders the top-`k` span-time buckets of `events` as an aligned
/// table: category, span count, total milliseconds, and share of all
/// attributed span time.
///
/// # Examples
///
/// ```
/// use lumos_bench::attribution_table;
/// use lumos_trace::Tracer;
///
/// let tracer = Tracer::ring(16);
/// tracer.span(1, 0, "kernel:gemm", "fc", 0, 2_000_000, Vec::new());
/// tracer.span(1, 2, "link:hbm", "weights", 0, 6_000_000, Vec::new());
/// let out = attribution_table(&tracer.drain(), 10).render();
/// assert!(out.starts_with("where"));
/// assert!(out.contains("link:hbm"));
/// assert!(out.contains("75.0%"));
/// ```
pub fn attribution_table(events: &[TraceEvent], k: usize) -> Table {
    let attr = Attribution::of_spans(events);
    let mut t = Table::new(&[
        ("where", Align::Left),
        ("spans", Align::Right),
        ("total (ms)", Align::Right),
        ("share", Align::Right),
    ]);
    for row in attr.top_k(k) {
        t.row(vec![
            row.cat.clone(),
            row.count.to_string(),
            format!("{:.3}", row.total_ps as f64 / 1e9),
            format!("{:.1}%", attr.share(row) * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_trace::Tracer;

    fn traced_events() -> Vec<TraceEvent> {
        let tracer = Tracer::ring(64);
        tracer.span(1, 1, "kernel:conv3x3", "c1", 0, 3_000_000_000, Vec::new());
        tracer.span(1, 1, "kernel:gemm", "fc", 0, 1_000_000_000, Vec::new());
        tracer.span(1, 3, "link:phnet", "acts", 0, 4_000_000_000, Vec::new());
        tracer.instant(1, 0, "request", "arrive", 0, Vec::new());
        tracer.drain()
    }

    #[test]
    fn table_ranks_categories_and_formats_shares() {
        let out = attribution_table(&traced_events(), 10).render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "header + 3 categories:\n{out}");
        assert!(lines[1].starts_with("link:phnet"));
        assert!(lines[1].contains("4.000"));
        assert!(lines[1].ends_with("50.0%"));
        assert!(lines[2].starts_with("kernel:conv3x3"));
        assert!(lines[3].ends_with("12.5%"));
    }

    #[test]
    fn top_k_truncates_rows() {
        let t = attribution_table(&traced_events(), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn no_spans_renders_header_only() {
        let t = attribution_table(&[], 5);
        assert!(t.is_empty());
        assert_eq!(t.render(), "where spans total (ms) share\n");
    }
}
