//! Diagnostic: per-model, per-platform latency and energy breakdowns.
//!
//! ```text
//! cargo run -p lumos-bench --bin breakdown
//! ```

use lumos_bench::run_full_evaluation;
use lumos_core::PlatformConfig;

fn main() {
    let cfg = PlatformConfig::paper_table1();
    {
        use lumos_phnet::network::PhotonicInterposer;
        let net = PhotonicInterposer::new(cfg.phnet.clone()).expect("feasible");
        println!(
            "SWMR: loss {:.1} dB, laser {:.2} W/tree × {}; SWSR: loss {:.1} dB, laser {:.2} W/gw × {}",
            net.swmr_design().total_loss_db,
            net.swmr_design().laser_electrical_w,
            cfg.phnet.memory_tx_gateways,
            net.swsr_design().total_loss_db,
            net.swsr_design().laser_electrical_w,
            cfg.phnet.total_compute_gateways(),
        );
        println!(
            "phnet static full: {:.1} W, min: n/a",
            net.static_power_of(net.active_set())
        );
    }
    let (reports, _) = run_full_evaluation(&cfg);
    for platform_reports in &reports {
        println!("=== {} ===", platform_reports[0].platform.label());
        println!(
            "{:<14} {:>10} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7}",
            "model",
            "lat(ms)",
            "P(W)",
            "EPB(nJ)",
            "mac(mJ)",
            "net(mJ)",
            "mem(mJ)",
            "dig(mJ)",
            "comm%"
        );
        for r in platform_reports {
            println!(
                "{:<14} {:>10.3} {:>8.1} {:>9.3} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>6.0}%",
                r.model,
                r.latency_ms(),
                r.avg_power_w(),
                r.epb_nj(),
                r.energy.mac_j * 1e3,
                r.energy.network_j * 1e3,
                r.energy.memory_j * 1e3,
                r.energy.digital_j * 1e3,
                r.comm_bound_fraction() * 100.0
            );
        }
    }
}
