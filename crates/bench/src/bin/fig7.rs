//! Regenerates the paper's Fig. 7: per-model normalized (a) power,
//! (b) total latency, and (c) energy-per-bit for the three platforms
//! (experiments F7a/F7b/F7c in the docs/ARCHITECTURE.md experiment
//! index).
//!
//! Values are normalized per model to the monolithic CrossLight
//! baseline (=1.0), matching the figure's presentation.
//!
//! ```text
//! cargo run -p lumos-bench --bin fig7
//! ```

use lumos_bench::run_full_evaluation;
use lumos_core::{Platform, PlatformConfig, RunReport};

fn main() {
    let cfg = PlatformConfig::paper_table1();
    let (reports, _) = run_full_evaluation(&cfg);
    let [mono, elec, siph] = [&reports[0], &reports[1], &reports[2]];

    print_series(
        "Fig. 7(a): normalized power consumption",
        mono,
        elec,
        siph,
        |r| r.avg_power_w(),
    );
    println!();
    print_series(
        "Fig. 7(b): normalized total latency",
        mono,
        elec,
        siph,
        |r| r.latency_ms(),
    );
    println!();
    print_series(
        "Fig. 7(c): normalized energy-per-bit",
        mono,
        elec,
        siph,
        |r| r.epb_nj(),
    );
}

fn print_series(
    title: &str,
    mono: &[RunReport],
    elec: &[RunReport],
    siph: &[RunReport],
    metric: impl Fn(&RunReport) -> f64,
) {
    println!("{title}");
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "Model",
        Platform::Monolithic.label(),
        "2.5D-Elec",
        "2.5D-SiPh"
    );
    for i in 0..mono.len() {
        let base = metric(&mono[i]);
        println!(
            "{:<14} {:>12.3} {:>12.3} {:>12.3}",
            mono[i].model,
            1.0,
            metric(&elec[i]) / base,
            metric(&siph[i]) / base
        );
    }
}
