//! Regenerates the paper's Tables 1, 2, and 3 (experiments T1, T2,
//! T3, X1 in the docs/ARCHITECTURE.md experiment index).
//!
//! ```text
//! cargo run -p lumos-bench --bin tables                         # all tables
//! cargo run -p lumos-bench --bin tables -- table3               # one table
//! cargo run -p lumos-bench --bin tables -- table3 --threads 2   # pin workers
//! ```

use lumos_bench::{ratio, run_full_evaluation};
use lumos_core::config::MacClass;
use lumos_core::reference::{LITERATURE, PAPER_SIMULATED};
use lumos_core::PlatformConfig;
use lumos_dnn::zoo;

fn main() {
    // `--threads N` is consumed by lumos_bench::bench_threads(); the
    // first remaining argument selects the table.
    let which = lumos_bench::strip_thread_flags(std::env::args().skip(1))
        .into_iter()
        .next()
        .unwrap_or_else(|| "all".to_owned());
    let cfg = PlatformConfig::paper_table1();
    match which.as_str() {
        "table1" => table1(&cfg),
        "table2" => table2(),
        "table3" => table3(&cfg),
        "all" => {
            table1(&cfg);
            println!();
            table2();
            println!();
            table3(&cfg);
        }
        other => {
            eprintln!("unknown table '{other}', expected table1|table2|table3|all");
            std::process::exit(2);
        }
    }
}

fn table1(cfg: &PlatformConfig) {
    println!("TABLE 1. MODELING PARAMETERS");
    println!("{:<48} Value", "Parameter");
    println!(
        "{:<48} {} Gb/s",
        "Data rate of optical link (per wavelength)", cfg.phnet.rate_gbps
    );
    println!(
        "{:<48} {} GHz",
        "Gateway frequency", cfg.phnet.gateway_freq_ghz
    );
    println!("{:<48} 128 bits", "Electrical network-on-chip link width");
    println!("{:<48} 2 GHz", "Electrical network-on-chip frequency");
    println!("{:<48} {}", "Number of wavelengths", cfg.phnet.wavelengths);
    println!(
        "{:<48} {}",
        "Number of memory-chiplets", cfg.memory_chiplets
    );
    println!(
        "{:<48} {}",
        "Number of compute-chiplets",
        cfg.compute_chiplets()
    );
    for (label, class) in [
        ("100 unit dense MAC", MacClass::Dense100),
        ("7x7 convolution MAC", MacClass::Conv7),
        ("5x5 convolution MAC", MacClass::Conv5),
        ("3x3 convolution MAC", MacClass::Conv3),
    ] {
        let c = cfg.class(class);
        println!("{label}:");
        println!("{:<48} {}", "  Number of chiplets", c.chiplets);
        println!(
            "{:<48} {}",
            "  Number of MACs per chiplet", c.macs_per_chiplet
        );
        println!(
            "{:<48} {}",
            "  Number of MACs per gateway", c.macs_per_gateway
        );
    }
}

fn table2() {
    println!("TABLE 2. CONSIDERED DNN MODELS IN OUR EVALUATION.");
    println!(
        "{:<16} {:>12} {:>10} {:>14}",
        "Model", "CONV layers", "FC layers", "Parameters"
    );
    for m in zoo::table2_models() {
        println!(
            "{:<16} {:>12} {:>10} {:>14}",
            m.name(),
            m.conv_layer_count(),
            m.fc_layer_count(),
            m.param_count()
        );
    }
}

fn table3(cfg: &PlatformConfig) {
    let (_, summaries) = run_full_evaluation(cfg);
    println!("TABLE 3. AVERAGE POWER, LATENCY, AND ENERGY-PER-BIT");
    println!(
        "{:<28} {:>10} {:>13} {:>12}",
        "", "Power (W)", "Latency (ms)", "EPB (nJ/bit)"
    );
    println!("--- simulated by LUMOS ---");
    for s in &summaries {
        println!(
            "{:<28} {:>10.1} {:>13.3} {:>12.2}",
            s.platform.label(),
            s.avg_power_w,
            s.avg_latency_ms,
            s.avg_epb_nj
        );
    }
    println!("--- paper's values for the same platforms ---");
    for r in PAPER_SIMULATED {
        println!(
            "{:<28} {:>10.1} {:>13.3} {:>12.2}",
            r.name, r.power_w, r.latency_ms, r.epb_nj
        );
    }
    println!("--- cited hardware rows (from the paper, not simulated) ---");
    for r in LITERATURE {
        println!(
            "{:<28} {:>10.1} {:>13.3} {:>12.2}",
            r.name, r.power_w, r.latency_ms, r.epb_nj
        );
    }

    let (mono, elec, siph) = (&summaries[0], &summaries[1], &summaries[2]);
    println!();
    println!("Headline ratios (paper: 6.6x, 2.8x, 34x, 15.8x):");
    println!(
        "  SiPh vs monolithic:  {} lower latency, {} lower EPB",
        ratio(mono.avg_latency_ms, siph.avg_latency_ms),
        ratio(mono.avg_epb_nj, siph.avg_epb_nj)
    );
    println!(
        "  SiPh vs electrical:  {} lower latency, {} lower EPB",
        ratio(elec.avg_latency_ms, siph.avg_latency_ms),
        ratio(elec.avg_epb_nj, siph.avg_epb_nj)
    );
}
