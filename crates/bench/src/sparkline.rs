//! ASCII sparkline rendering for windowed-metrics snapshots: the
//! terminal dashboard the examples print after metered runs.
//!
//! A [`MetricsSnapshot`] is a set of sparse windowed series on the
//! virtual clock; [`metrics_dashboard`] renders each series as one
//! fixed-width line — name, sparkline, and a kind-appropriate summary —
//! choosing a per-window value by metric kind:
//!
//! * gauges plot the window's **last** sample;
//! * `*_busy_ps` counters plot **occupancy** (window sum over window
//!   width — a utilization fraction when one unit feeds the series);
//! * other counters plot the window **rate per second** of virtual
//!   time;
//! * histograms plot the window **sample count**.
//!
//! Everything is deterministic: the dashboard is a pure function of the
//! snapshot, so metered reruns of one configuration render
//! byte-identical dashboards (pinned by the `metrics` example).

use lumos_metrics::{MetricKind, MetricsSnapshot, SeriesSnapshot};

/// The eight block glyphs, lowest to highest.
const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `values` as one block glyph each, scaled from
/// `min(0, minimum)` to the maximum (so magnitudes, not just shape,
/// survive — an all-equal positive series renders high, not low).
/// Non-finite values render as spaces; an empty slice renders empty.
///
/// # Examples
///
/// ```
/// use lumos_bench::sparkline;
///
/// assert_eq!(sparkline(&[0.0, 0.5, 1.0]), "▁▅█");
/// assert_eq!(sparkline(&[3.0, 3.0]), "██");
/// assert_eq!(sparkline(&[]), "");
/// ```
pub fn sparkline(values: &[f64]) -> String {
    let mut lo = 0.0f64;
    let mut hi = f64::NEG_INFINITY;
    for &v in values.iter().filter(|v| v.is_finite()) {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                ' '
            } else if hi <= lo {
                BLOCKS[0]
            } else {
                let t = (v - lo) / (hi - lo);
                BLOCKS[((t * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// The plotted value of one window, by metric kind (see the module
/// docs).
fn window_value(s: &SeriesSnapshot, w: &lumos_metrics::WindowSample) -> f64 {
    match s.kind {
        MetricKind::Gauge => w.last,
        MetricKind::Counter => {
            if s.base_name().ends_with("_busy_ps") {
                w.sum / s.window_ps as f64
            } else {
                s.rate_per_s(w)
            }
        }
        MetricKind::Histogram => w.count as f64,
    }
}

/// Resamples one series onto `width` equal time columns spanning the
/// virtual-clock origin to the series' last window end. Columns average
/// the windows they overlap; uncovered columns are zero (an idle window
/// is a real zero on the timeline, not a gap).
fn resample(s: &SeriesSnapshot, width: usize) -> Vec<f64> {
    let Some(last) = s.windows.last() else {
        return vec![0.0; width];
    };
    let span = (last.start_ps + s.window_ps) as f64;
    let mut sums = vec![0.0f64; width];
    let mut counts = vec![0u32; width];
    for w in &s.windows {
        let v = window_value(s, w);
        let c0 = (w.start_ps as f64 / span * width as f64) as usize;
        let c1 = (((w.start_ps + s.window_ps - 1) as f64) / span * width as f64) as usize;
        for c in c0..=c1.min(width - 1) {
            sums[c] += v;
            counts[c] += 1;
        }
    }
    sums.iter()
        .zip(&counts)
        .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect()
}

/// One summary cell for the right edge of a dashboard line.
fn summary(s: &SeriesSnapshot) -> String {
    match s.kind {
        MetricKind::Gauge => format!(
            "last={:.3}",
            s.windows.last().map(|w| w.last).unwrap_or(0.0)
        ),
        MetricKind::Counter => format!("total={:.3}", s.total_sum),
        MetricKind::Histogram => format!("n={}", s.total_count),
    }
}

/// Renders every series of `snap` as one `name |sparkline| summary`
/// line, sorted by name (the snapshot's order), each sparkline `width`
/// columns wide over that series' own time span. Returns an empty
/// string for an empty snapshot.
///
/// # Examples
///
/// ```
/// use lumos_bench::metrics_dashboard;
/// use lumos_metrics::MetricsRegistry;
///
/// let reg = MetricsRegistry::windowed(1_000, 64);
/// let c = reg.counter("tokens_total");
/// for i in 0..8 {
///     reg.add(c, i * 1_000, (i % 3) as f64);
/// }
/// let out = metrics_dashboard(&reg.snapshot(), 8);
/// assert!(out.contains("tokens_total"));
/// assert!(out.contains("total=7.000"));
/// ```
pub fn metrics_dashboard(snap: &MetricsSnapshot, width: usize) -> String {
    let width = width.max(1);
    let name_w = snap
        .series
        .iter()
        .map(|s| s.name.len())
        .max()
        .unwrap_or(0)
        .min(48);
    let mut out = String::new();
    for s in &snap.series {
        let lane = sparkline(&resample(s, width));
        out.push_str(&format!(
            "{:<name_w$} |{lane}| {}\n",
            s.name,
            summary(s),
            name_w = name_w
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_metrics::MetricsRegistry;

    #[test]
    fn sparkline_scales_from_zero() {
        assert_eq!(sparkline(&[0.0, 7.0]), "▁█");
        // All-equal positive values sit at the top, not the bottom.
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "███");
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
        // Non-finite samples render as gaps without poisoning the scale.
        assert_eq!(sparkline(&[0.0, f64::NAN, 1.0]), "▁ █");
    }

    #[test]
    fn dashboard_renders_each_series_once() {
        let reg = MetricsRegistry::windowed(1_000, 32);
        let g = reg.gauge("depth");
        let c = reg.counter("runner_compute_busy_ps{class=\"phot_dense\"}");
        reg.set(g, 500, 3.0);
        reg.set(g, 1_500, 1.0);
        reg.add_span(c, 0, 2_000, 2_000.0);
        let out = metrics_dashboard(&reg.snapshot(), 10);
        assert_eq!(out.lines().count(), 2);
        assert!(out.contains("depth"));
        assert!(out.contains("last=1.000"));
        // Full occupancy across both windows: a flat, full lane.
        let busy = out
            .lines()
            .find(|l| l.contains("busy_ps"))
            .expect("busy series rendered");
        assert!(busy.contains("██████████"), "{busy}");
        assert!(busy.contains("total=2000.000"));
    }

    #[test]
    fn dashboard_of_empty_snapshot_is_empty() {
        let reg = MetricsRegistry::off();
        assert!(metrics_dashboard(&reg.snapshot(), 16).is_empty());
    }

    #[test]
    fn resample_covers_sparse_series_with_zeros() {
        let reg = MetricsRegistry::windowed(1_000, 64);
        let c = reg.counter("events_total");
        reg.add(c, 0, 1.0);
        reg.add(c, 9_500, 1.0);
        let snap = reg.snapshot();
        let s = snap.series_named("events_total").expect("registered");
        let vals = resample(s, 10);
        assert_eq!(vals.len(), 10);
        assert!(vals[0] > 0.0 && vals[9] > 0.0);
        assert!(vals[4] == 0.0, "idle middle renders as zero");
    }
}
