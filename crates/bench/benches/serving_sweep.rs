//! Serving capacity sweep: the fleet-level counterpart of the Table 3
//! harness. Prints the p99-vs-load grid of a CNN + transformer mix
//! across scheduling policies and platforms — through the memoized
//! `lumos_dse` engine — then benchmarks the serving simulator and the
//! warm-cache sweep path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lumos_bench::{bench_threads, Align, Table};
use lumos_core::{Platform, PlatformConfig};
use lumos_dnn::workload::Precision;
use lumos_dnn::zoo;
use lumos_dse::{MemoCache, ServeAxes};
use lumos_serve::{dse as sdse, simulate, ServeConfig, ServedModel};

const PLATFORMS: [Platform; 2] = [Platform::Siph2p5D, Platform::Elec2p5D];

fn mix() -> Vec<ServedModel> {
    vec![
        ServedModel::cnn(&zoo::resnet50(), Precision::int8(), 60.0, 10.0),
        ServedModel::transformer(
            &lumos_xformer::zoo::bert_base(),
            128,
            4,
            Precision::int8(),
            10.0,
            50.0,
        ),
    ]
}

fn base() -> ServeConfig {
    ServeConfig::new(PlatformConfig::paper_table1(), Platform::Siph2p5D, mix())
        .with_duration_s(1.0)
        .with_seed(2026)
}

fn sweep_once(cache: &mut MemoCache) -> Vec<sdse::ServePoint> {
    let (points, _) = sdse::sweep(
        &base(),
        &ServeAxes::bench_grid(),
        &PLATFORMS,
        bench_threads(),
        cache,
    )
    .expect("serving sweep runs");
    points
}

fn print_sweep() {
    println!("\n=== serving capacity sweep (ResNet-50 + BERT-Base mix) ===");
    let mut cache = MemoCache::in_memory();
    let points = sweep_once(&mut cache);
    let mut table = Table::new(&[
        ("platform", Align::Left),
        ("load", Align::Right),
        ("policy", Align::Right),
        ("p99 (ms)", Align::Right),
        ("P (W)", Align::Right),
        ("EPB (nJ/b)", Align::Right),
    ]);
    for p in &points {
        table.row(vec![
            p.platform.to_string(),
            format!("{:.2}", p.load_scale),
            p.policy.to_string(),
            format!("{:.2}", p.p99_ms),
            format!("{:.1}", p.power_w),
            format!("{:.3}", p.epb_nj),
        ]);
    }
    table.print();
    println!();
}

fn bench(c: &mut Criterion) {
    print_sweep();
    let mut group = c.benchmark_group("serving_sweep");
    group.sample_size(10);

    for load in [0.5f64, 2.0] {
        group.bench_with_input(
            BenchmarkId::new("simulate_siph", format!("load{load}")),
            &load,
            |b, &load| {
                let cfg = base().with_load_scale(load).with_duration_s(0.25);
                b.iter(|| simulate(&cfg).expect("serving simulation runs"))
            },
        );
    }

    // The memoized engine on a warm cache: the whole policy × load ×
    // platform grid served from the memo should cost microseconds.
    let mut cache = MemoCache::in_memory();
    let _ = sweep_once(&mut cache);
    group.bench_function("warm_cache_grid", |b| {
        b.iter(|| {
            let (points, stats) =
                sdse::sweep(&base(), &ServeAxes::bench_grid(), &PLATFORMS, 1, &mut cache)
                    .expect("warm serving sweep runs");
            assert!(stats.all_hits());
            points
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
