//! Experiment A1 (paper conclusion, open challenge 3): wavelength-count
//! sweep. Prints the latency/power trade for 8..64 wavelengths on
//! ResNet-50 and VGG-16, then benchmarks representative points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lumos_core::{Platform, PlatformConfig, Runner};

fn sweep() {
    println!("\n=== A1: wavelength sweep (2.5D-SiPh) ===");
    println!(
        "{:<8} {:<14} {:>12} {:>10} {:>12}",
        "λ", "model", "lat (ms)", "P (W)", "EPB (nJ/b)"
    );
    for wavelengths in [8usize, 16, 32, 48, 64] {
        for model in [lumos_dnn::zoo::resnet50(), lumos_dnn::zoo::vgg16()] {
            let mut cfg = PlatformConfig::paper_table1();
            cfg.phnet.wavelengths = wavelengths;
            match Runner::new(cfg).run(&Platform::Siph2p5D, &model) {
                Ok(r) => println!(
                    "{:<8} {:<14} {:>12.3} {:>10.1} {:>12.3}",
                    wavelengths,
                    model.name(),
                    r.latency_ms(),
                    r.avg_power_w(),
                    r.epb_nj()
                ),
                Err(e) => println!("{:<8} {:<14} infeasible: {e}", wavelengths, model.name()),
            }
        }
    }
    println!();
}

fn bench(c: &mut Criterion) {
    sweep();
    let mut group = c.benchmark_group("ablation_wavelengths");
    group.sample_size(10);
    for wavelengths in [16usize, 64] {
        let mut cfg = PlatformConfig::paper_table1();
        cfg.phnet.wavelengths = wavelengths;
        let runner = Runner::new(cfg);
        group.bench_with_input(
            BenchmarkId::from_parameter(wavelengths),
            &wavelengths,
            |b, _| {
                b.iter(|| {
                    runner
                        .run(&Platform::Siph2p5D, &lumos_dnn::zoo::resnet50())
                        .expect("feasible")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
