//! Experiment A1 (paper conclusion, open challenge 3): wavelength-count
//! sweep. Prints the latency/power trade for 8..64 wavelengths on
//! ResNet-50 and VGG-16, then benchmarks representative points.
//!
//! The print sweep runs through the `lumos_dse` engine on the shared
//! [`DseAxes::wavelength_ablation`] grid (gateways fixed at Table 1's
//! 4), in parallel and memoized within the process.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lumos_bench::bench_threads;
use lumos_core::dse::{self, DseAxes, MemoCache};
use lumos_core::{Platform, PlatformConfig, Runner};

fn sweep() {
    println!("\n=== A1: wavelength sweep (2.5D-SiPh) ===");
    println!(
        "{:<8} {:<14} {:>12} {:>10} {:>12}",
        "λ", "model", "lat (ms)", "P (W)", "EPB (nJ/b)"
    );
    let base = PlatformConfig::paper_table1();
    let axes = DseAxes::wavelength_ablation();
    let mut cache = MemoCache::in_memory();
    for model in [lumos_dnn::zoo::resnet50(), lumos_dnn::zoo::vgg16()] {
        let (points, _) = dse::sweep_with(&base, &axes, &model, bench_threads(), Some(&mut cache));
        for p in points {
            if p.feasible {
                println!(
                    "{:<8} {:<14} {:>12.3} {:>10.1} {:>12.3}",
                    p.wavelengths,
                    model.name(),
                    p.latency_ms,
                    p.power_w,
                    p.epb_nj
                );
            } else {
                println!("{:<8} {:<14} infeasible", p.wavelengths, model.name());
            }
        }
    }
    println!();
}

fn bench(c: &mut Criterion) {
    sweep();
    let mut group = c.benchmark_group("ablation_wavelengths");
    group.sample_size(10);
    for wavelengths in [16usize, 64] {
        let mut cfg = PlatformConfig::paper_table1();
        cfg.phnet.wavelengths = wavelengths;
        let runner = Runner::new(cfg);
        group.bench_with_input(
            BenchmarkId::from_parameter(wavelengths),
            &wavelengths,
            |b, _| {
                b.iter(|| {
                    runner
                        .run(&Platform::Siph2p5D, &lumos_dnn::zoo::resnet50())
                        .expect("feasible")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
