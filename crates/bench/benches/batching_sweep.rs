//! Continuous-batching sweep: sustained tokens/sec of a saturating
//! GPT-2-small generator stream as the decode-batch cap grows, on both
//! 2.5D platforms. Prints the occupancy/throughput grid, then
//! benchmarks the batched-plane profile build and the continuous
//! scheduler itself against the legacy per-stream path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lumos_bench::{Align, Table};
use lumos_core::{Platform, PlatformConfig};
use lumos_dnn::workload::Precision;
use lumos_dse::BatchPolicy;
use lumos_serve::{build_profiles, simulate_with_profiles, ServeConfig, ServedModel};

fn mix(rate_rps: f64) -> Vec<ServedModel> {
    vec![ServedModel::generator(
        &lumos_xformer::zoo::gpt2_small(),
        32,
        12,
        1,
        Precision::int8(),
        rate_rps,
        1_000.0,
    )]
}

fn base(platform: Platform, rate_rps: f64, duration_s: f64) -> ServeConfig {
    ServeConfig::new(PlatformConfig::paper_table1(), platform, mix(rate_rps))
        .with_duration_s(duration_s)
        .with_seed(2026)
        .with_max_concurrency(16)
}

fn print_sweep() {
    println!("\n=== continuous-batching sweep (GPT-2-small generators) ===");
    let mut table = Table::new(&[
        ("platform", Align::Left),
        ("decode", Align::Right),
        ("tok/s", Align::Right),
        ("TTFT p50 (ms)", Align::Right),
        ("occ mean", Align::Right),
    ]);
    for (platform, rate, dur) in [
        (Platform::Siph2p5D, 400.0, 0.25),
        (Platform::Elec2p5D, 30.0, 1.5),
    ] {
        for batching in [
            BatchPolicy::PerStream,
            BatchPolicy::continuous(2),
            BatchPolicy::continuous(4),
        ] {
            let cfg = base(platform, rate, dur).with_batching(batching);
            let profiles = build_profiles(&cfg).expect("profiles build");
            let report = simulate_with_profiles(&cfg, &profiles).expect("serving simulation runs");
            table.row(vec![
                platform.to_string(),
                batching.label().to_owned(),
                format!("{:.0}", report.aggregate_tokens_per_s),
                format!("{:.2}", report.aggregate_ttft.p50_ms),
                if report.batch.ticks == 0 {
                    "-".to_owned()
                } else {
                    format!("{:.2}", report.batch.mean_occupancy)
                },
            ]);
        }
    }
    table.print();
    println!();
}

fn bench(c: &mut Criterion) {
    print_sweep();
    let mut group = c.benchmark_group("batching_sweep");
    group.sample_size(10);

    // Building the 2-D stage x batch decode planes is the expensive
    // step: every (step, batch, contention) cell is one DES run.
    group.bench_function("build_batched_profiles_siph", |b| {
        let cfg = base(Platform::Siph2p5D, 400.0, 0.25).with_batching(BatchPolicy::continuous(4));
        b.iter(|| build_profiles(&cfg).expect("profiles build"))
    });

    // The scheduler itself, on prebuilt profiles.
    for batching in [BatchPolicy::PerStream, BatchPolicy::continuous(4)] {
        let cfg = base(Platform::Siph2p5D, 400.0, 0.25).with_batching(batching);
        let profiles = build_profiles(&cfg).expect("profiles build");
        group.bench_with_input(
            BenchmarkId::new("simulate_siph", batching.label()),
            &cfg,
            |b, cfg| {
                b.iter(|| simulate_with_profiles(cfg, &profiles).expect("serving simulation runs"))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
