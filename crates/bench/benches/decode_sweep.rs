//! KV-cached decode sweep: the generation-latency counterpart of
//! `transformer_sweep`. Prints per-token latency/power/EPB for GPT-2
//! small decode steps across cache depths and batches on the photonic
//! platform — through the memoized `lumos_dse` engine — then benchmarks
//! representative decode steps and the warm-cache grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lumos_bench::bench_threads;
use lumos_core::dse::{DecodeAxes, MemoCache};
use lumos_core::{Platform, PlatformConfig};
use lumos_xformer::{dse as xdse, zoo as xzoo};

fn sweep() {
    println!("\n=== KV-cached decode sweep (2.5D-SiPh, gpt2_small) ===");
    println!(
        "{:>8} {:>6} {:>14} {:>10} {:>12}",
        "cache", "batch", "ms/token", "P (W)", "EPB (nJ/b)"
    );
    let cfg = PlatformConfig::paper_table1();
    let axes = DecodeAxes::bench_grid();
    let mut cache = MemoCache::in_memory();
    let gpt2 = xzoo::gpt2_small();
    let (points, _) = xdse::sweep_decode(
        &cfg,
        &Platform::Siph2p5D,
        &gpt2,
        &axes,
        bench_threads(),
        &mut cache,
    );
    for p in points {
        if p.feasible {
            println!(
                "{:>8} {:>6} {:>14.4} {:>10.1} {:>12.3}",
                p.cache_len, p.batch, p.latency_ms, p.power_w, p.epb_nj
            );
        } else {
            println!("{:>8} {:>6} infeasible", p.cache_len, p.batch);
        }
    }
    println!();
}

fn bench(c: &mut Criterion) {
    sweep();
    let cfg = PlatformConfig::paper_table1();
    let mut group = c.benchmark_group("decode_sweep");
    group.sample_size(10);
    let gpt2 = xzoo::gpt2_small();
    for (cache_len, batch) in [(128u32, 1u32), (4096, 8)] {
        group.bench_with_input(
            BenchmarkId::new("gpt2_small", format!("cache{cache_len}_b{batch}")),
            &(cache_len, batch),
            |b, &(cache_len, batch)| {
                b.iter(|| {
                    xdse::run_decode(&cfg, &Platform::Siph2p5D, &gpt2, cache_len, batch)
                        .expect("feasible")
                })
            },
        );
    }
    // The memoized engine on a warm cache: the whole bench grid served
    // from the memo should cost microseconds, not simulations.
    let mut cache = MemoCache::in_memory();
    let axes = DecodeAxes::bench_grid();
    let _ = xdse::sweep_decode(&cfg, &Platform::Siph2p5D, &gpt2, &axes, 0, &mut cache);
    group.bench_function("gpt2_small/warm_cache_grid", |b| {
        b.iter(|| {
            let (points, stats) =
                xdse::sweep_decode(&cfg, &Platform::Siph2p5D, &gpt2, &axes, 1, &mut cache);
            assert!(stats.all_hits());
            points
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
