//! Transformer scenario sweep: the zoo-expansion counterpart of the
//! Table 3 harness. Prints the latency/power/EPB trade of the
//! transformer zoo across sequence lengths and batch sizes on the
//! photonic platform — through the memoized `lumos_dse` engine — then
//! benchmarks representative scenarios.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lumos_bench::bench_threads;
use lumos_core::dse::{MemoCache, XformerAxes};
use lumos_core::{Platform, PlatformConfig};
use lumos_xformer::{dse as xdse, zoo as xzoo};

fn sweep() {
    println!("\n=== transformer scenario sweep (2.5D-SiPh) ===");
    println!(
        "{:<12} {:>6} {:>6} {:>12} {:>10} {:>12}",
        "model", "seq", "batch", "lat (ms)", "P (W)", "EPB (nJ/b)"
    );
    let cfg = PlatformConfig::paper_table1();
    let axes = XformerAxes::bench_grid();
    let mut cache = MemoCache::in_memory();
    for model in xzoo::transformer_zoo() {
        let (points, _) = xdse::sweep_scenarios(
            &cfg,
            &Platform::Siph2p5D,
            &model,
            &axes,
            bench_threads(),
            &mut cache,
        );
        for p in points {
            if p.feasible {
                println!(
                    "{:<12} {:>6} {:>6} {:>12.3} {:>10.1} {:>12.3}",
                    model.name, p.effective_seq, p.batch, p.latency_ms, p.power_w, p.epb_nj
                );
            } else {
                println!(
                    "{:<12} {:>6} {:>6} infeasible",
                    model.name, p.effective_seq, p.batch
                );
            }
        }
    }
    println!();
}

fn bench(c: &mut Criterion) {
    sweep();
    let cfg = PlatformConfig::paper_table1();
    let mut group = c.benchmark_group("transformer_sweep");
    group.sample_size(10);
    for (seq, batch) in [(128u32, 1u32), (512, 8)] {
        let bert = xzoo::bert_base();
        group.bench_with_input(
            BenchmarkId::new("bert_base", format!("seq{seq}_b{batch}")),
            &(seq, batch),
            |b, &(seq, batch)| {
                b.iter(|| {
                    xdse::run(&cfg, &Platform::Siph2p5D, &bert, seq, batch).expect("feasible")
                })
            },
        );
    }
    // The memoized engine on a warm cache: the whole bench grid served
    // from the memo should cost microseconds, not simulations.
    let mut cache = MemoCache::in_memory();
    let axes = XformerAxes::bench_grid();
    let vit = xzoo::vit_b16();
    let _ = xdse::sweep_scenarios(&cfg, &Platform::Siph2p5D, &vit, &axes, 0, &mut cache);
    group.bench_function("vit_b16/warm_cache_grid", |b| {
        b.iter(|| {
            let (points, stats) =
                xdse::sweep_scenarios(&cfg, &Platform::Siph2p5D, &vit, &axes, 1, &mut cache);
            assert!(stats.all_hits());
            points
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
