//! Experiment A2 (paper conclusion, open challenge 3): gateways-per-
//! chiplet sweep. More gateways buy inter-chiplet bandwidth at laser,
//! tuning, and MRG-footprint cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lumos_core::{Platform, PlatformConfig, Runner};

fn sweep() {
    println!("\n=== A2: gateways-per-chiplet sweep (2.5D-SiPh, VGG-16) ===");
    println!(
        "{:<8} {:>12} {:>10} {:>12} {:>14}",
        "gw", "lat (ms)", "P (W)", "EPB (nJ/b)", "net rings"
    );
    for gateways in [1usize, 2, 4, 6, 8] {
        let mut cfg = PlatformConfig::paper_table1();
        cfg.phnet.gateways_per_chiplet = gateways;
        let rings = cfg.phnet.total_rings();
        match Runner::new(cfg).run(&Platform::Siph2p5D, &lumos_dnn::zoo::vgg16()) {
            Ok(r) => println!(
                "{:<8} {:>12.3} {:>10.1} {:>12.3} {:>14}",
                gateways,
                r.latency_ms(),
                r.avg_power_w(),
                r.epb_nj(),
                rings
            ),
            Err(e) => println!("{gateways:<8} infeasible: {e}"),
        }
    }
    println!();
}

fn bench(c: &mut Criterion) {
    sweep();
    let mut group = c.benchmark_group("ablation_gateways");
    group.sample_size(10);
    for gateways in [1usize, 4] {
        let mut cfg = PlatformConfig::paper_table1();
        cfg.phnet.gateways_per_chiplet = gateways;
        let runner = Runner::new(cfg);
        group.bench_with_input(BenchmarkId::from_parameter(gateways), &gateways, |b, _| {
            b.iter(|| {
                runner
                    .run(&Platform::Siph2p5D, &lumos_dnn::zoo::vgg16())
                    .expect("feasible")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
