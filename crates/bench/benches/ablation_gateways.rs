//! Experiment A2 (paper conclusion, open challenge 3): gateways-per-
//! chiplet sweep. More gateways buy inter-chiplet bandwidth at laser,
//! tuning, and MRG-footprint cost.
//!
//! The print sweep runs through the `lumos_dse` engine on the shared
//! [`DseAxes::gateway_ablation`] grid (wavelengths fixed at Table 1's
//! 64).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lumos_bench::bench_threads;
use lumos_core::dse::{self, DseAxes, MemoCache};
use lumos_core::{Platform, PlatformConfig, Runner};

fn sweep() {
    println!("\n=== A2: gateways-per-chiplet sweep (2.5D-SiPh, VGG-16) ===");
    println!(
        "{:<8} {:>12} {:>10} {:>12} {:>14}",
        "gw", "lat (ms)", "P (W)", "EPB (nJ/b)", "net rings"
    );
    let base = PlatformConfig::paper_table1();
    let axes = DseAxes::gateway_ablation();
    let mut cache = MemoCache::in_memory();
    let model = lumos_dnn::zoo::vgg16();
    let (points, _) = dse::sweep_with(&base, &axes, &model, bench_threads(), Some(&mut cache));
    for p in points {
        let rings = dse::grid_config(&base, p.wavelengths, p.gateways, p.mac_scale)
            .phnet
            .total_rings();
        if p.feasible {
            println!(
                "{:<8} {:>12.3} {:>10.1} {:>12.3} {:>14}",
                p.gateways, p.latency_ms, p.power_w, p.epb_nj, rings
            );
        } else {
            println!("{:<8} infeasible ({rings} rings)", p.gateways);
        }
    }
    println!();
}

fn bench(c: &mut Criterion) {
    sweep();
    let mut group = c.benchmark_group("ablation_gateways");
    group.sample_size(10);
    for gateways in [1usize, 4] {
        let mut cfg = PlatformConfig::paper_table1();
        cfg.phnet.gateways_per_chiplet = gateways;
        let runner = Runner::new(cfg);
        group.bench_with_input(BenchmarkId::from_parameter(gateways), &gateways, |b, _| {
            b.iter(|| {
                runner
                    .run(&Platform::Siph2p5D, &lumos_dnn::zoo::vgg16())
                    .expect("feasible")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
