//! Experiment A3: reconfiguration-policy ablation — ReSiPI gateway
//! activation vs PROWAVES wavelength scaling vs static corners, averaged
//! over the Table 2 models. The 4 policies × 5 models grid evaluates in
//! parallel through the `lumos_dse` worker pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lumos_bench::bench_threads;
use lumos_core::{Platform, PlatformConfig, Runner};
use lumos_phnet::ReconfigPolicy;

const POLICIES: [(ReconfigPolicy, &str); 4] = [
    (ReconfigPolicy::ResipiGateways, "resipi"),
    (ReconfigPolicy::ProwavesWavelengths, "prowaves"),
    (ReconfigPolicy::StaticFull, "static_full"),
    (ReconfigPolicy::StaticMin, "static_min"),
];

fn sweep() {
    println!("\n=== A3: reconfiguration policies (2.5D-SiPh, Table 2 average) ===");
    println!(
        "{:<14} {:>12} {:>10} {:>12}",
        "policy", "lat (ms)", "P (W)", "EPB (nJ/b)"
    );
    let models = lumos_dnn::zoo::table2_models();
    let cells: Vec<(ReconfigPolicy, &lumos_dnn::Model)> = POLICIES
        .iter()
        .flat_map(|&(policy, _)| models.iter().map(move |m| (policy, m)))
        .collect();
    let reports = lumos_dse::parallel_map(&cells, bench_threads(), |(policy, model)| {
        let mut cfg = PlatformConfig::paper_table1();
        cfg.phnet.policy = *policy;
        Runner::new(cfg)
            .run(&Platform::Siph2p5D, model)
            .expect("feasible")
    });
    let n = models.len() as f64;
    for ((_, name), chunk) in POLICIES.iter().zip(reports.chunks(models.len())) {
        println!(
            "{:<14} {:>12.3} {:>10.1} {:>12.3}",
            name,
            chunk.iter().map(|r| r.latency_ms()).sum::<f64>() / n,
            chunk.iter().map(|r| r.avg_power_w()).sum::<f64>() / n,
            chunk.iter().map(|r| r.epb_nj()).sum::<f64>() / n
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    sweep();
    let mut group = c.benchmark_group("ablation_policies");
    group.sample_size(10);
    for (policy, name) in POLICIES {
        let mut cfg = PlatformConfig::paper_table1();
        cfg.phnet.policy = policy;
        let runner = Runner::new(cfg);
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, _| {
            b.iter(|| {
                runner
                    .run(&Platform::Siph2p5D, &lumos_dnn::zoo::densenet121())
                    .expect("feasible")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
