//! Micro-benchmarks of the simulator's hot kernels: event queue, FIFO
//! bandwidth servers, mesh routing under contention, the photonic
//! link-budget solver, model-zoo construction, and workload extraction.
//!
//! These track the *simulator's* performance (so regressions in the
//! substrate show up in CI), not the paper's metrics.

use criterion::{criterion_group, criterion_main, Criterion};
use lumos_dnn::workload::{extract_workloads, Precision};
use lumos_photonics::prelude::*;
use lumos_sim::{BandwidthServer, EventQueue, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("kernels/event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(SimTime::from_ps(i * 37 % 100_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            acc
        })
    });
}

fn bench_bandwidth_server(c: &mut Criterion) {
    c.bench_function("kernels/bandwidth_server_10k_grants", |b| {
        b.iter(|| {
            let mut s = BandwidthServer::new(768.0);
            let mut fin = SimTime::ZERO;
            for i in 0..10_000u64 {
                fin = s.serve(SimTime::from_ns(i), 4096).finish;
            }
            fin
        })
    });
}

fn bench_mesh_contention(c: &mut Criterion) {
    use lumos_noc::{Coord, MeshNetwork};
    c.bench_function("kernels/mesh_1k_hotspot_transfers", |b| {
        b.iter(|| {
            let mut net = MeshNetwork::paper_table1(3, 3, 8.0);
            let centre = Coord::new(1, 1);
            let mut fin = SimTime::ZERO;
            for i in 0..1_000u32 {
                let src = Coord::new(i % 3, (i / 3) % 3);
                if src != centre {
                    fin = net.transfer(SimTime::ZERO, src, centre, 10_000).finish;
                }
            }
            fin
        })
    });
}

fn bench_link_solver(c: &mut Criterion) {
    let budget = LinkBudget::new()
        .stage("coupler", Decibels::new(1.5))
        .stage("path", Decibels::new(20.0))
        .stage("drop", Decibels::new(1.0));
    let modulator = Modulator::typical(ModulationFormat::Ook);
    let detector = Photodetector::typical();
    let laser = Laser::new(LaserPlacement::OffChip, 64);
    c.bench_function("kernels/link_budget_solve_64ch", |b| {
        b.iter(|| {
            solve_link(
                &budget,
                &ChannelPlan::dense(64),
                12.0,
                &modulator,
                &detector,
                &laser,
                12_000,
                25.0,
            )
            .expect("feasible")
        })
    });
}

fn bench_zoo(c: &mut Criterion) {
    c.bench_function("kernels/build_resnet50_graph", |b| {
        b.iter(lumos_dnn::zoo::resnet50)
    });
    let model = lumos_dnn::zoo::densenet121();
    c.bench_function("kernels/extract_workloads_densenet121", |b| {
        b.iter(|| extract_workloads(&model, Precision::int8()))
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_bandwidth_server,
    bench_mesh_contention,
    bench_link_solver,
    bench_zoo
);
criterion_main!(benches);
