//! Extension ablation: heterogeneous quantization (paper §III, [22]) on
//! the photonic platform — interposer traffic and latency vs per-layer
//! bit-width policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lumos_core::{Platform, PlatformConfig, Runner};
use lumos_dnn::quantization::{extract_quantized_workloads, QuantPolicy, QuantizationScheme};

const POLICIES: [(&str, QuantPolicy); 3] = [
    ("uniform8", QuantPolicy::Uniform { bits: 8 }),
    (
        "edges8_4",
        QuantPolicy::EdgesHigh {
            edge_bits: 8,
            interior_bits: 4,
        },
    ),
    (
        "traffic8_4",
        QuantPolicy::TrafficAware {
            max_bits: 8,
            min_bits: 4,
        },
    ),
];

fn sweep() {
    println!("\n=== quantization ablation (2.5D-SiPh) ===");
    println!(
        "{:<14} {:<12} {:>12} {:>12} {:>12}",
        "model", "policy", "traffic(Gb)", "lat (ms)", "EPB (nJ/b)"
    );
    let runner = Runner::new(PlatformConfig::paper_table1());
    for model in [lumos_dnn::zoo::vgg16(), lumos_dnn::zoo::resnet50()] {
        for (name, policy) in POLICIES {
            let scheme = QuantizationScheme::assign(&model, policy);
            let work = extract_quantized_workloads(&model, &scheme);
            let r = runner
                .run_workloads(&Platform::Siph2p5D, model.name(), &work)
                .expect("feasible");
            println!(
                "{:<14} {:<12} {:>12.3} {:>12.3} {:>12.3}",
                model.name(),
                name,
                r.bits_moved as f64 / 1e9,
                r.latency_ms(),
                r.epb_nj()
            );
        }
    }
    println!();
}

fn bench(c: &mut Criterion) {
    sweep();
    let runner = Runner::new(PlatformConfig::paper_table1());
    let model = lumos_dnn::zoo::resnet50();
    let mut group = c.benchmark_group("ablation_quantization");
    group.sample_size(10);
    for (name, policy) in POLICIES {
        let scheme = QuantizationScheme::assign(&model, policy);
        let work = extract_quantized_workloads(&model, &scheme);
        group.bench_with_input(BenchmarkId::from_parameter(name), &work, |b, w| {
            b.iter(|| {
                runner
                    .run_workloads(&Platform::Siph2p5D, "resnet50", w)
                    .expect("feasible")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
