//! Experiment T3/X1: regenerates Table 3 (average power, latency, and
//! energy-per-bit across the three platforms) and benchmarks the full
//! evaluation pipeline.
//!
//! The table rows print once before timing starts, so
//! `cargo bench -p lumos-bench --bench table3` both reproduces the
//! artifact and tracks simulator performance.

use criterion::{criterion_group, criterion_main, Criterion};
use lumos_bench::{ratio, run_full_evaluation, run_full_evaluation_with};
use lumos_core::dse::{self, DseAxes, MemoCache};
use lumos_core::reference::{LITERATURE, PAPER_SIMULATED};
use lumos_core::{Platform, PlatformConfig, Runner};

fn print_table3() {
    let cfg = PlatformConfig::paper_table1();
    let (_, summaries) = run_full_evaluation(&cfg);
    println!("\n=== TABLE 3 (regenerated) ===");
    println!(
        "{:<28} {:>10} {:>13} {:>12}",
        "", "Power (W)", "Latency (ms)", "EPB (nJ/bit)"
    );
    for s in &summaries {
        println!(
            "{:<28} {:>10.1} {:>13.3} {:>12.2}",
            s.platform.label(),
            s.avg_power_w,
            s.avg_latency_ms,
            s.avg_epb_nj
        );
    }
    for r in PAPER_SIMULATED.iter().chain(LITERATURE.iter()) {
        println!(
            "{:<28} {:>10.1} {:>13.3} {:>12.2}   [cited]",
            r.name, r.power_w, r.latency_ms, r.epb_nj
        );
    }
    let (mono, elec, siph) = (&summaries[0], &summaries[1], &summaries[2]);
    println!(
        "ratios: mono/siph latency {}, EPB {}; elec/siph latency {}, EPB {} (paper: 6.6x, 2.8x, 34x, 15.8x)\n",
        ratio(mono.avg_latency_ms, siph.avg_latency_ms),
        ratio(mono.avg_epb_nj, siph.avg_epb_nj),
        ratio(elec.avg_latency_ms, siph.avg_latency_ms),
        ratio(elec.avg_epb_nj, siph.avg_epb_nj),
    );
}

fn bench_table3(c: &mut Criterion) {
    print_table3();
    let cfg = PlatformConfig::paper_table1();
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("full_evaluation_15_runs", |b| {
        b.iter(|| run_full_evaluation(&cfg))
    });
    // The same 15 runs pinned to one worker: the sequential baseline the
    // parallel engine is measured against on multi-core runners.
    group.bench_function("full_evaluation_sequential", |b| {
        b.iter(|| run_full_evaluation_with(&cfg, 1))
    });

    // The paper-conclusion DSE sweep (18 points, ResNet-50): sequential
    // and uncached vs parallel through a warm memo cache. The memoized
    // sweep should win by orders of magnitude — it simulates nothing.
    let model = lumos_dnn::zoo::resnet50();
    let axes = DseAxes::paper_conclusion();
    group.bench_function("dse_sweep_sequential", |b| {
        b.iter(|| dse::sweep_with(&cfg, &axes, &model, 1, None))
    });
    let mut cache = MemoCache::in_memory();
    let _ = dse::sweep_with(&cfg, &axes, &model, 0, Some(&mut cache));
    group.bench_function("dse_sweep_memoized", |b| {
        b.iter(|| {
            let (points, stats) = dse::sweep_with(&cfg, &axes, &model, 0, Some(&mut cache));
            assert!(stats.all_hits());
            points
        })
    });

    let runner = Runner::new(cfg);
    group.bench_function("resnet50_on_siph", |b| {
        b.iter(|| {
            runner
                .run(&Platform::Siph2p5D, &lumos_dnn::zoo::resnet50())
                .expect("feasible")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
