//! Experiments F7a/F7b/F7c: regenerates the three series of Fig. 7
//! (normalized power, total latency, and energy-per-bit per model) and
//! benchmarks the per-model simulation paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lumos_bench::run_full_evaluation;
use lumos_core::{Platform, PlatformConfig, Runner};

fn print_fig7() {
    let cfg = PlatformConfig::paper_table1();
    let (reports, _) = run_full_evaluation(&cfg);
    let titles = [
        "Fig. 7(a) normalized power",
        "Fig. 7(b) normalized total latency",
        "Fig. 7(c) normalized energy-per-bit",
    ];
    let metrics: [fn(&lumos_core::RunReport) -> f64; 3] =
        [|r| r.avg_power_w(), |r| r.latency_ms(), |r| r.epb_nj()];
    for (title, metric) in titles.iter().zip(metrics) {
        println!("\n=== {title} (mono = 1.0) ===");
        println!(
            "{:<14} {:>10} {:>10} {:>10}",
            "Model", "mono", "elec", "siph"
        );
        for ((mono, elec), siph) in reports[0].iter().zip(&reports[1]).zip(&reports[2]) {
            let base = metric(mono);
            println!(
                "{:<14} {:>10.3} {:>10.3} {:>10.3}",
                mono.model,
                1.0,
                metric(elec) / base,
                metric(siph) / base
            );
        }
    }
    println!();
}

fn bench_fig7(c: &mut Criterion) {
    print_fig7();
    let runner = Runner::new(PlatformConfig::paper_table1());
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    for (name, model) in [
        ("lenet5", lumos_dnn::zoo::lenet5()),
        ("mobilenet_v2", lumos_dnn::zoo::mobilenet_v2()),
        ("vgg16", lumos_dnn::zoo::vgg16()),
    ] {
        for platform in Platform::all() {
            group.bench_with_input(BenchmarkId::new(platform.label(), name), &model, |b, m| {
                b.iter(|| runner.run(&platform, m).expect("feasible"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
