//! Captures the compiling toolchain's version string so `lumos-bench
//! --json` can stamp it into snapshot headers: the `--diff` gate warns
//! when two snapshots were produced by different toolchains.

use std::process::Command;

fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_owned());
    let version = Command::new(&rustc)
        .arg("--version")
        .output()
        .ok()
        .filter(|out| out.status.success())
        .map(|out| String::from_utf8_lossy(&out.stdout).trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned());
    println!("cargo:rustc-env=LUMOS_RUSTC_VERSION={version}");
    println!("cargo:rerun-if-env-changed=RUSTC");
}
