//! Property-based tests for shape inference, workload extraction, and
//! quantization invariants.

use lumos_dnn::quantization::{QuantPolicy, QuantizationScheme};
use lumos_dnn::workload::{extract_workloads, totals, Precision};
use lumos_dnn::{conv_out, Layer, Model, Padding, TensorShape};
use proptest::prelude::*;

/// Strategy: a random small sequential CNN that always shape-checks.
fn random_cnn() -> impl Strategy<Value = Model> {
    let conv = (1u32..=2, prop::sample::select(vec![1u32, 3, 5]), 2u32..16);
    (
        8u32..=32,
        1u32..=4,
        proptest::collection::vec(conv, 1..4),
        2u32..32,
    )
        .prop_map(|(hw, c, convs, classes)| {
            let mut m = Model::new("prop_cnn", TensorShape::chw(c, hw, hw));
            for (i, (stride, k, out_c)) in convs.into_iter().enumerate() {
                let cur = m
                    .tail()
                    .map(|t| m.output_shape_of(t))
                    .unwrap_or(m.input_shape());
                let stride = if cur.h / stride >= 4 { stride } else { 1 };
                m.push(
                    &format!("conv{i}"),
                    Layer::conv(out_c, k, stride, Padding::Same),
                )
                .expect("same-padded conv always fits");
            }
            m.push("gap", Layer::GlobalAvgPool).expect("valid");
            m.push("fc", Layer::dense(classes)).expect("valid");
            m
        })
}

proptest! {
    /// Same-padded convolutions shrink exactly by the stride (ceiling
    /// division), and stride 1 preserves spatial size.
    #[test]
    fn conv_out_same_padding_is_ceil_div(
        input in 1u32..256,
        kernel in prop::sample::select(vec![1u32, 3, 5, 7]),
        stride in 1u32..4,
    ) {
        let out = conv_out(input, kernel, stride, Padding::Same);
        prop_assert_eq!(out, input.div_ceil(stride));
        prop_assert_eq!(conv_out(input, kernel, 1, Padding::Same), input);
    }

    /// Valid padding never yields a larger map than same padding, and
    /// both shrink monotonically in stride.
    #[test]
    fn conv_out_orderings(
        input in 8u32..128,
        kernel in prop::sample::select(vec![1u32, 3, 5, 7]),
        stride in 1u32..4,
    ) {
        let same = conv_out(input, kernel, stride, Padding::Same);
        let valid = conv_out(input, kernel, stride, Padding::Valid);
        prop_assert!(valid <= same);
        let slower = conv_out(input, kernel, stride + 1, Padding::Same);
        prop_assert!(slower <= same);
    }

    /// Workload extraction conserves MACs and parameters: per-layer sums
    /// match the graph-level counters, and `totals` matches the slice.
    #[test]
    fn workloads_conserve_graph_counters(model in random_cnn()) {
        let work = extract_workloads(&model, Precision::int8());
        prop_assert_eq!(work.len(), model.conv_layer_count() + model.fc_layer_count());
        let macs: u64 = work.iter().map(|w| w.macs).sum();
        prop_assert_eq!(macs, model.mac_count());
        let t = totals(&work);
        prop_assert_eq!(t.macs, macs);
        let bits: u64 = work.iter().map(|w| w.total_bits()).sum();
        prop_assert_eq!(t.total_bits, bits);
        prop_assert_eq!(t.weight_bits + t.activation_bits, bits);
    }

    /// Doubling precision exactly doubles every traffic component and
    /// leaves compute (MACs, passes) untouched.
    #[test]
    fn precision_scales_traffic_only(model in random_cnn()) {
        let w8 = extract_workloads(&model, Precision::int8());
        let w16 = extract_workloads(&model, Precision::int16());
        prop_assert_eq!(w8.len(), w16.len());
        for (a, b) in w8.iter().zip(&w16) {
            prop_assert_eq!(2 * a.weight_bits, b.weight_bits);
            prop_assert_eq!(2 * a.input_bits, b.input_bits);
            prop_assert_eq!(2 * a.output_bits, b.output_bits);
            prop_assert_eq!(a.macs, b.macs);
            prop_assert_eq!(a.passes_on(16), b.passes_on(16));
        }
    }

    /// MAC passes are monotone non-increasing in lane count.
    #[test]
    fn passes_monotone_in_lanes(model in random_cnn(), lanes in 1u64..64) {
        for w in extract_workloads(&model, Precision::int8()) {
            prop_assert!(w.passes_on(lanes + 1) <= w.passes_on(lanes));
            // One lane is the serial upper bound.
            prop_assert!(w.passes_on(lanes) <= w.passes_on(1));
        }
    }

    /// Quantization schemes assign one width per weighted layer; uniform
    /// policy means a constant assignment, and every mixed policy stays
    /// within its declared bounds.
    #[test]
    fn quantization_bounds(model in random_cnn(), bits in 2u32..16) {
        let uniform = QuantizationScheme::assign(&model, QuantPolicy::Uniform { bits });
        let weighted = model.conv_layer_count() + model.fc_layer_count();
        prop_assert_eq!(uniform.layer_bits.len(), weighted);
        prop_assert!(uniform.layer_bits.iter().all(|&b| b == bits));
        prop_assert!((uniform.mean_weight_bits(&model) - bits as f64).abs() < 1e-9);

        let mixed = QuantizationScheme::assign(
            &model,
            QuantPolicy::TrafficAware { max_bits: 16, min_bits: 4 },
        );
        prop_assert!(mixed.layer_bits.iter().all(|&b| (4..=16).contains(&b)));
    }
}
