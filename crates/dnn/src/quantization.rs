//! Heterogeneous quantization (paper §III, ref. \[22\]).
//!
//! The paper's related work optimizes noncoherent accelerators with
//! *heterogeneous* quantization: potentially different parameter
//! bit-widths per DNN layer, trading accuracy headroom for
//! electrical-photonic interface energy. This module assigns per-layer
//! bit-widths under several policies and rescales workloads accordingly,
//! so the platform simulator can sweep precision per layer.

use crate::graph::Model;
use crate::workload::{extract_workloads, LayerWorkload, Precision};

/// Per-layer bit-width assignment policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantPolicy {
    /// Every layer at the same width.
    Uniform {
        /// Bits for weights and activations.
        bits: u32,
    },
    /// First and last weighted layers keep high precision (they dominate
    /// accuracy), interior layers run narrow — the standard mixed scheme.
    EdgesHigh {
        /// Bits for the first/last layers.
        edge_bits: u32,
        /// Bits for the interior layers.
        interior_bits: u32,
    },
    /// Width scales with a layer's parameter share: parameter-heavy
    /// layers (FC) get squeezed hardest, tiny layers keep precision —
    /// the traffic-oriented assignment of interface-energy optimizers.
    TrafficAware {
        /// Maximum (and default) bit-width.
        max_bits: u32,
        /// Minimum bit-width for the heaviest layers.
        min_bits: u32,
    },
}

/// A per-layer bit-width assignment for a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizationScheme {
    /// Bits per weighted layer, in execution order.
    pub layer_bits: Vec<u32>,
}

impl QuantizationScheme {
    /// Builds a scheme for `model` under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if any requested width is 0 or > 32, or if the model has
    /// no weighted layers.
    pub fn assign(model: &Model, policy: QuantPolicy) -> Self {
        let weighted: Vec<u64> = model
            .weighted_nodes()
            .map(|n| n.layer.param_count(n.input_shape))
            .collect();
        assert!(!weighted.is_empty(), "model has no weighted layers");
        let check = |b: u32| {
            assert!((1..=32).contains(&b), "bit-width {b} out of range");
            b
        };
        let layer_bits = match policy {
            QuantPolicy::Uniform { bits } => vec![check(bits); weighted.len()],
            QuantPolicy::EdgesHigh {
                edge_bits,
                interior_bits,
            } => {
                check(edge_bits);
                check(interior_bits);
                let n = weighted.len();
                (0..n)
                    .map(|i| {
                        if i == 0 || i == n - 1 {
                            edge_bits
                        } else {
                            interior_bits
                        }
                    })
                    .collect()
            }
            QuantPolicy::TrafficAware { max_bits, min_bits } => {
                check(max_bits);
                check(min_bits);
                assert!(min_bits <= max_bits, "min_bits > max_bits");
                let heaviest = *weighted.iter().max().expect("non-empty") as f64;
                weighted
                    .iter()
                    .map(|&p| {
                        // Log-scaled interpolation: a layer with 1% of the
                        // heaviest layer's parameters keeps near-max width.
                        let f = if heaviest > 0.0 && p > 0 {
                            ((p as f64).ln() / heaviest.ln()).clamp(0.0, 1.0)
                        } else {
                            0.0
                        };
                        let bits = max_bits as f64 - f * (max_bits - min_bits) as f64;
                        bits.round() as u32
                    })
                    .collect()
            }
        };
        QuantizationScheme { layer_bits }
    }

    /// Average bit-width, parameter-weighted, for `model`.
    pub fn mean_weight_bits(&self, model: &Model) -> f64 {
        let params: Vec<u64> = model
            .weighted_nodes()
            .map(|n| n.layer.param_count(n.input_shape))
            .collect();
        let total: u64 = params.iter().sum();
        if total == 0 {
            return 0.0;
        }
        params
            .iter()
            .zip(&self.layer_bits)
            .map(|(&p, &b)| p as f64 * b as f64)
            .sum::<f64>()
            / total as f64
    }
}

/// Extracts workloads with per-layer bit-widths from `scheme` applied to
/// both weights and activations of each layer.
///
/// The scheme assigns one width per *weighted* layer; the elementwise
/// softmax/norm passes the extraction also emits carry no scheme slot
/// and ride at the width of the nearest preceding weighted layer
/// (their streams are that layer's activations). Passes before the
/// first weighted layer — or in a model with none — default to 8 bits.
///
/// # Panics
///
/// Panics if the scheme's length does not match the model's weighted
/// layer count.
pub fn extract_quantized_workloads(
    model: &Model,
    scheme: &QuantizationScheme,
) -> Vec<LayerWorkload> {
    let base = extract_workloads(
        model,
        Precision {
            weight_bits: 1,
            activation_bits: 1,
        },
    );
    let weighted = base.iter().filter(|w| !w.class.is_elementwise()).count();
    assert_eq!(
        weighted,
        scheme.layer_bits.len(),
        "scheme covers {} layers, model has {}",
        scheme.layer_bits.len(),
        weighted
    );
    let mut widths = scheme.layer_bits.iter();
    let mut bits = scheme.layer_bits.first().copied().unwrap_or(8);
    base.into_iter()
        .map(|mut w| {
            if !w.class.is_elementwise() {
                bits = *widths.next().expect("length checked above");
            }
            w.weight_bits *= bits as u64;
            w.input_bits *= bits as u64;
            w.output_bits *= bits as u64;
            w
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::totals;
    use crate::zoo;

    #[test]
    fn uniform_matches_plain_extraction() {
        let model = zoo::lenet5();
        let scheme = QuantizationScheme::assign(&model, QuantPolicy::Uniform { bits: 8 });
        let q = extract_quantized_workloads(&model, &scheme);
        let plain = extract_workloads(&model, Precision::int8());
        assert_eq!(totals(&q), totals(&plain));
    }

    #[test]
    fn edges_high_assigns_correctly() {
        let model = zoo::lenet5(); // 5 weighted layers
        let scheme = QuantizationScheme::assign(
            &model,
            QuantPolicy::EdgesHigh {
                edge_bits: 16,
                interior_bits: 4,
            },
        );
        assert_eq!(scheme.layer_bits, vec![16, 4, 4, 4, 16]);
    }

    #[test]
    fn traffic_aware_squeezes_heavy_layers() {
        let model = zoo::vgg16();
        let scheme = QuantizationScheme::assign(
            &model,
            QuantPolicy::TrafficAware {
                max_bits: 8,
                min_bits: 4,
            },
        );
        // fc1 (102.8 M params) must get the minimum width; conv1_1
        // (1.8 K params) stays near the maximum.
        let fc1_idx = 13; // after the 13 convs
        assert_eq!(scheme.layer_bits[fc1_idx], 4);
        assert!(scheme.layer_bits[0] >= 6);
        // Parameter-weighted mean sits near the bottom (FC dominates).
        let mean = scheme.mean_weight_bits(&model);
        assert!((4.0..5.5).contains(&mean), "mean bits {mean}");
    }

    #[test]
    fn quantized_traffic_scales_with_bits() {
        let model = zoo::lenet5();
        let w8 = extract_quantized_workloads(
            &model,
            &QuantizationScheme::assign(&model, QuantPolicy::Uniform { bits: 8 }),
        );
        let w4 = extract_quantized_workloads(
            &model,
            &QuantizationScheme::assign(&model, QuantPolicy::Uniform { bits: 4 }),
        );
        assert_eq!(totals(&w8).total_bits, 2 * totals(&w4).total_bits);
        // MACs are unchanged by precision.
        assert_eq!(totals(&w8).macs, totals(&w4).macs);
    }

    #[test]
    fn mixed_scheme_reduces_traffic_vs_uniform_high() {
        let model = zoo::resnet50();
        let uniform = extract_quantized_workloads(
            &model,
            &QuantizationScheme::assign(&model, QuantPolicy::Uniform { bits: 8 }),
        );
        let mixed = extract_quantized_workloads(
            &model,
            &QuantizationScheme::assign(
                &model,
                QuantPolicy::EdgesHigh {
                    edge_bits: 8,
                    interior_bits: 4,
                },
            ),
        );
        assert!(totals(&mixed).total_bits < totals(&uniform).total_bits);
    }

    #[test]
    fn elementwise_only_model_defaults_to_8_bits() {
        use crate::layer::Layer;
        use crate::shape::TensorShape;
        let mut m = Model::new("norm_only", TensorShape::chw(64, 8, 1));
        m.push("ln", Layer::LayerNorm)
            .expect("layer norm preserves any shape");
        let q = extract_quantized_workloads(
            &m,
            &QuantizationScheme {
                layer_bits: Vec::new(),
            },
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].input_bits, 64 * 8 * 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_bits_rejected() {
        let model = zoo::lenet5();
        let _ = QuantizationScheme::assign(&model, QuantPolicy::Uniform { bits: 0 });
    }
}
