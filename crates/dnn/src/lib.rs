//! # lumos-dnn — DNN workload substrate
//!
//! Layer graphs, shape inference, and exact parameter/MAC/traffic
//! accounting for the DNN models the paper evaluates (Table 2), plus the
//! workload extraction the accelerator simulator consumes.
//!
//! * [`shape`] — tensor shapes and convolution arithmetic
//! * [`layer`] — the layer enum with Keras-convention accounting
//! * [`graph`] — models as DAGs with inferred shapes
//! * [`zoo`] — LeNet-5, ResNet-50, DenseNet-121, VGG-16, MobileNetV2,
//!   each matching its published total parameter count exactly
//! * [`workload`] — per-layer compute/traffic extraction, including
//!   explicit softmax/layer-norm traffic passes and the batched-GEMM
//!   kernel class transformer blocks lower to (see `lumos_xformer`)
//! * [`quantization`] — heterogeneous per-layer bit-widths (§III, \[22\])
//!
//! # Examples
//!
//! ```
//! use lumos_dnn::workload::{extract_workloads, totals, Precision};
//!
//! let model = lumos_dnn::zoo::resnet50();
//! assert_eq!(model.param_count(), 25_636_712); // Table 2, exactly
//!
//! let work = extract_workloads(&model, Precision::int8());
//! let t = totals(&work);
//! assert!(t.macs > 3_000_000_000); // ~3.9 GMAC per inference
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod layer;
pub mod quantization;
pub mod shape;
pub mod workload;
pub mod zoo;

pub use graph::{Model, ModelError, Node, NodeId};
pub use layer::{Activation, Layer};
pub use quantization::{extract_quantized_workloads, QuantPolicy, QuantizationScheme};
pub use shape::{conv_out, Padding, TensorShape};
pub use workload::{extract_workloads, totals, KernelClass, LayerWorkload, Precision};
