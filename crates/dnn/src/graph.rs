//! DNN models as directed acyclic graphs of layers.

use std::fmt;

use crate::layer::Layer;
use crate::shape::TensorShape;

/// Identifier of a node inside a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(usize);

impl NodeId {
    /// Index into [`Model::nodes`].
    pub fn index(self) -> usize {
        self.0
    }
}

/// One placed layer: the layer, its fan-in, and its inferred shapes.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Graph-unique name (useful in reports).
    pub name: String,
    /// The layer.
    pub layer: Layer,
    /// Input nodes (empty only for the implicit input).
    pub inputs: Vec<NodeId>,
    /// Inferred input shape (after Add/Concat merging).
    pub input_shape: TensorShape,
    /// Inferred output shape.
    pub output_shape: TensorShape,
}

/// Errors from model construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// An input `NodeId` does not exist yet (would create a cycle or
    /// dangling edge).
    UnknownInput {
        /// Offending node name.
        node: String,
    },
    /// `Add` inputs disagree on shape.
    AddShapeMismatch {
        /// Offending node name.
        node: String,
    },
    /// `Concat` inputs disagree on spatial dims.
    ConcatShapeMismatch {
        /// Offending node name.
        node: String,
    },
    /// A merge layer was given fewer than two inputs, or a normal layer a
    /// fan-in other than one.
    BadFanIn {
        /// Offending node name.
        node: String,
        /// Number of inputs supplied.
        got: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownInput { node } => {
                write!(f, "node '{node}' references unknown input")
            }
            ModelError::AddShapeMismatch { node } => {
                write!(f, "add node '{node}' has mismatched input shapes")
            }
            ModelError::ConcatShapeMismatch { node } => {
                write!(f, "concat node '{node}' has mismatched spatial dims")
            }
            ModelError::BadFanIn { node, got } => {
                write!(f, "node '{node}' has invalid fan-in {got}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// A DNN model: a named DAG of layers with inferred shapes.
///
/// Nodes are appended in topological order by construction (inputs must
/// already exist), so iteration order is always a valid execution order.
///
/// # Examples
///
/// ```
/// use lumos_dnn::graph::Model;
/// use lumos_dnn::layer::Layer;
/// use lumos_dnn::shape::{Padding, TensorShape};
///
/// let mut m = Model::new("tiny", TensorShape::chw(3, 32, 32));
/// let c = m.push("conv1", Layer::conv(8, 3, 1, Padding::Same))?;
/// let _ = m.push("flatten", Layer::Flatten)?;
/// let _ = m.push("fc", Layer::dense(10))?;
/// assert_eq!(m.param_count(), 3*3*3*8 + 8 + 8*32*32*10 + 10);
/// # let _ = c;
/// # Ok::<(), lumos_dnn::graph::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    name: String,
    input_shape: TensorShape,
    nodes: Vec<Node>,
    /// The most recently appended node, used by [`Model::push`].
    tail: Option<NodeId>,
}

impl Model {
    /// Creates an empty model with the given input shape.
    pub fn new(name: &str, input_shape: TensorShape) -> Self {
        Model {
            name: name.to_owned(),
            input_shape,
            nodes: Vec::new(),
            tail: None,
        }
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input tensor shape.
    pub fn input_shape(&self) -> TensorShape {
        self.input_shape
    }

    /// All nodes in topological (execution) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node most recently appended.
    pub fn tail(&self) -> Option<NodeId> {
        self.tail
    }

    /// Shape produced by `id`.
    pub fn output_shape_of(&self, id: NodeId) -> TensorShape {
        self.nodes[id.0].output_shape
    }

    /// Appends a layer fed by the current tail (or the model input when
    /// the graph is empty). Sequential-model convenience.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Model::add_node`].
    pub fn push(&mut self, name: &str, layer: Layer) -> Result<NodeId, ModelError> {
        let inputs = self.tail.map(|t| vec![t]).unwrap_or_default();
        self.add_node(name, layer, inputs)
    }

    /// Appends a layer with explicit fan-in.
    ///
    /// # Errors
    ///
    /// * [`ModelError::UnknownInput`] if any input id is out of range.
    /// * [`ModelError::BadFanIn`] if the fan-in does not fit the layer
    ///   (merge layers need ≥ 2 inputs, others exactly 1 — or 0 for the
    ///   first node, which implicitly reads the model input).
    /// * [`ModelError::AddShapeMismatch`] / [`ModelError::ConcatShapeMismatch`]
    ///   when merge inputs disagree.
    pub fn add_node(
        &mut self,
        name: &str,
        layer: Layer,
        inputs: Vec<NodeId>,
    ) -> Result<NodeId, ModelError> {
        for &i in &inputs {
            if i.0 >= self.nodes.len() {
                return Err(ModelError::UnknownInput {
                    node: name.to_owned(),
                });
            }
        }

        let is_merge = matches!(layer, Layer::Add | Layer::Concat);
        let input_shape = if is_merge {
            if inputs.len() < 2 {
                return Err(ModelError::BadFanIn {
                    node: name.to_owned(),
                    got: inputs.len(),
                });
            }
            let shapes: Vec<TensorShape> = inputs
                .iter()
                .map(|&i| self.nodes[i.0].output_shape)
                .collect();
            match layer {
                Layer::Add => {
                    if shapes.windows(2).any(|w| w[0] != w[1]) {
                        return Err(ModelError::AddShapeMismatch {
                            node: name.to_owned(),
                        });
                    }
                    shapes[0]
                }
                Layer::Concat => {
                    if shapes
                        .windows(2)
                        .any(|w| w[0].h != w[1].h || w[0].w != w[1].w)
                    {
                        return Err(ModelError::ConcatShapeMismatch {
                            node: name.to_owned(),
                        });
                    }
                    let c: u32 = shapes.iter().map(|s| s.c).sum();
                    TensorShape::chw(c, shapes[0].h, shapes[0].w)
                }
                _ => unreachable!(),
            }
        } else {
            match inputs.len() {
                0 => self.input_shape,
                1 => self.nodes[inputs[0].0].output_shape,
                got => {
                    return Err(ModelError::BadFanIn {
                        node: name.to_owned(),
                        got,
                    })
                }
            }
        };

        let output_shape = if is_merge {
            input_shape
        } else {
            layer.output_shape(input_shape)
        };

        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            name: name.to_owned(),
            layer,
            inputs,
            input_shape,
            output_shape,
        });
        self.tail = Some(id);
        Ok(id)
    }

    /// Total parameter count (Keras "total params" convention).
    pub fn param_count(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.layer.param_count(n.input_shape))
            .sum()
    }

    /// Total multiply-accumulate count for one inference.
    pub fn mac_count(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.layer.mac_count(n.input_shape))
            .sum()
    }

    /// Number of convolution layers (dense + depthwise), Table 2's
    /// "CONV layers" column.
    pub fn conv_layer_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.layer, Layer::Conv2d { .. }))
            .count()
    }

    /// Number of fully connected layers, Table 2's "FC layers" column.
    pub fn fc_layer_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.layer, Layer::Dense { .. }))
            .count()
    }

    /// Iterates over the weighted (Conv/Dense) nodes in execution order.
    pub fn weighted_nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| n.layer.is_weighted())
    }

    /// A one-line summary: `name: params=…, macs=…, conv=…, fc=…`.
    pub fn summary(&self) -> String {
        format!(
            "{}: params={} macs={} conv={} fc={}",
            self.name,
            self.param_count(),
            self.mac_count(),
            self.conv_layer_count(),
            self.fc_layer_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Padding;

    fn base() -> Model {
        Model::new("t", TensorShape::chw(3, 8, 8))
    }

    #[test]
    fn sequential_push_chains_shapes() {
        let mut m = base();
        m.push("c1", Layer::conv(4, 3, 1, Padding::Same))
            .expect("same-padded conv fits the 8x8 input");
        m.push(
            "p",
            Layer::MaxPool {
                size: 2,
                stride: 2,
                padding: Padding::Valid,
            },
        )
        .expect("2x2 pool divides the 8x8 feature map");
        m.push("f", Layer::Flatten)
            .expect("flatten accepts any shape");
        let id = m
            .push("d", Layer::dense(10))
            .expect("dense accepts a flattened vector");
        assert_eq!(m.output_shape_of(id), TensorShape::vector(10));
        assert_eq!(m.nodes().len(), 4);
    }

    #[test]
    fn residual_add_checks_shapes() {
        let mut m = base();
        let a = m
            .push("c1", Layer::conv_nb(8, 3, 1, Padding::Same))
            .expect("same-padded conv fits the 8x8 input");
        let b = m
            .add_node("c2", Layer::conv_nb(8, 3, 1, Padding::Same), vec![a])
            .expect("branch conv matches the residual shape");
        let s = m
            .add_node("add", Layer::Add, vec![a, b])
            .expect("matching shapes must merge");
        assert_eq!(m.output_shape_of(s), TensorShape::chw(8, 8, 8));
    }

    #[test]
    fn add_shape_mismatch_rejected() {
        let mut m = base();
        let a = m
            .push("c1", Layer::conv_nb(8, 3, 1, Padding::Same))
            .expect("same-padded conv fits the 8x8 input");
        let b = m
            .add_node("c2", Layer::conv_nb(4, 3, 1, Padding::Same), vec![a])
            .expect("narrower branch conv is itself valid");
        let err = m.add_node("add", Layer::Add, vec![a, b]).unwrap_err();
        assert_eq!(err, ModelError::AddShapeMismatch { node: "add".into() });
    }

    #[test]
    fn concat_sums_channels() {
        let mut m = base();
        let a = m
            .push("c1", Layer::conv_nb(8, 3, 1, Padding::Same))
            .expect("same-padded conv fits the 8x8 input");
        let b = m
            .add_node("c2", Layer::conv_nb(4, 3, 1, Padding::Same), vec![a])
            .expect("branch conv keeps the spatial shape");
        let cat = m
            .add_node("cat", Layer::Concat, vec![a, b])
            .expect("same spatial shapes must concatenate");
        assert_eq!(m.output_shape_of(cat), TensorShape::chw(12, 8, 8));
    }

    #[test]
    fn merge_needs_two_inputs() {
        let mut m = base();
        let a = m
            .push("c1", Layer::conv_nb(8, 3, 1, Padding::Same))
            .expect("same-padded conv fits the 8x8 input");
        let err = m.add_node("add", Layer::Add, vec![a]).unwrap_err();
        assert!(matches!(err, ModelError::BadFanIn { got: 1, .. }));
    }

    #[test]
    fn unknown_input_rejected() {
        let mut m = base();
        let err = m
            .add_node("c", Layer::conv(4, 3, 1, Padding::Same), vec![NodeId(7)])
            .unwrap_err();
        assert!(matches!(err, ModelError::UnknownInput { .. }));
        assert!(err.to_string().contains("unknown input"));
    }

    #[test]
    fn counting_layers() {
        let mut m = base();
        m.push("c1", Layer::conv(4, 3, 1, Padding::Same))
            .expect("same-padded conv fits the 8x8 input");
        m.push("bn", Layer::BatchNorm)
            .expect("batch norm preserves any shape");
        m.push("dw", Layer::depthwise_nb(3, 1, Padding::Same))
            .expect("same-padded depthwise fits the feature map");
        m.push("f", Layer::Flatten)
            .expect("flatten accepts any shape");
        m.push("d", Layer::dense(10))
            .expect("dense accepts a flattened vector");
        assert_eq!(m.conv_layer_count(), 2);
        assert_eq!(m.fc_layer_count(), 1);
        assert_eq!(m.weighted_nodes().count(), 3);
    }

    #[test]
    fn summary_mentions_name() {
        let mut m = base();
        m.push("c1", Layer::conv(4, 3, 1, Padding::Same))
            .expect("same-padded conv fits the 8x8 input");
        assert!(m.summary().starts_with("t: params="));
    }
}
