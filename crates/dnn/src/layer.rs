//! DNN layer definitions with shape inference, parameter, and MAC
//! accounting.

use std::fmt;

use crate::shape::{conv_out, Padding, TensorShape};

/// Elementwise activation functions (no parameters; negligible MACs,
/// except [`Activation::Softmax`], whose per-element exp/normalize loop
/// is accounted explicitly — see [`Layer::mac_count`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// ReLU clipped at 6 (MobileNet family).
    Relu6,
    /// Hyperbolic tangent (LeNet).
    Tanh,
    /// Softmax over the feature vector.
    Softmax,
}

/// One layer of a DNN graph.
///
/// The variants cover everything the Table 2 model zoo needs; parameter
/// and MAC counts follow the Keras conventions so zoo totals can be
/// checked against published model summaries exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layer {
    /// 2-D convolution. `groups == 1` is a dense convolution;
    /// `groups == in_channels` (with `out_channels == in_channels`)
    /// is a depthwise convolution.
    Conv2d {
        /// Number of output feature maps.
        out_channels: u32,
        /// Square kernel size.
        kernel: u32,
        /// Spatial stride.
        stride: u32,
        /// Padding policy.
        padding: Padding,
        /// Whether a per-channel bias is added.
        use_bias: bool,
        /// Channel groups (1 = dense, `in_channels` = depthwise).
        groups: u32,
    },
    /// Fully connected layer over a flat vector.
    Dense {
        /// Number of output units.
        units: u32,
        /// Whether a per-unit bias is added.
        use_bias: bool,
    },
    /// Batch normalization: 4 parameters per channel (γ, β, μ, σ²),
    /// matching Keras "total params" accounting.
    BatchNorm,
    /// Layer normalization: 2 parameters per channel (γ, β), the
    /// transformer block's normalizer. Unlike BatchNorm it cannot fold
    /// into a preceding weighted layer (its statistics are computed at
    /// inference time), so it emits an explicit elementwise workload.
    LayerNorm,
    /// Elementwise activation.
    Activation(Activation),
    /// Max pooling.
    MaxPool {
        /// Window size.
        size: u32,
        /// Stride.
        stride: u32,
        /// Padding policy.
        padding: Padding,
    },
    /// Average pooling.
    AvgPool {
        /// Window size.
        size: u32,
        /// Stride.
        stride: u32,
        /// Padding policy.
        padding: Padding,
    },
    /// Global average pooling to a `(C)` vector.
    GlobalAvgPool,
    /// Explicit symmetric zero padding of the spatial dims.
    ZeroPad {
        /// Rows/columns added on each side.
        amount: u32,
    },
    /// Flattens `(C, H, W)` to a vector.
    Flatten,
    /// Elementwise sum of all inputs (residual connections).
    Add,
    /// Channel-axis concatenation of all inputs (DenseNet blocks).
    Concat,
}

impl Layer {
    /// Convenience constructor for a standard biased convolution.
    pub fn conv(out_channels: u32, kernel: u32, stride: u32, padding: Padding) -> Layer {
        Layer::Conv2d {
            out_channels,
            kernel,
            stride,
            padding,
            use_bias: true,
            groups: 1,
        }
    }

    /// Convenience constructor for an unbiased convolution (BN follows).
    pub fn conv_nb(out_channels: u32, kernel: u32, stride: u32, padding: Padding) -> Layer {
        Layer::Conv2d {
            out_channels,
            kernel,
            stride,
            padding,
            use_bias: false,
            groups: 1,
        }
    }

    /// Convenience constructor for an unbiased depthwise convolution; the
    /// channel count is resolved from the input at shape-inference time.
    pub fn depthwise_nb(kernel: u32, stride: u32, padding: Padding) -> Layer {
        Layer::Conv2d {
            out_channels: 0, // resolved to in_channels
            kernel,
            stride,
            padding,
            use_bias: false,
            groups: u32::MAX, // marker: groups = in_channels
        }
    }

    /// Convenience constructor for a biased dense layer.
    pub fn dense(units: u32) -> Layer {
        Layer::Dense {
            units,
            use_bias: true,
        }
    }

    /// `true` for layers that multiply weights (Conv2d / Dense) — the
    /// layers photonic MAC units execute and the rows Table 2 counts.
    pub fn is_weighted(&self) -> bool {
        matches!(self, Layer::Conv2d { .. } | Layer::Dense { .. })
    }

    /// Output shape given the (single-input) shape. `Add`/`Concat` are
    /// handled by the graph, which knows all input shapes.
    ///
    /// # Panics
    ///
    /// Panics on invalid combinations (e.g. `Dense` on a spatial tensor,
    /// depthwise marker with explicit `out_channels`).
    pub fn output_shape(&self, input: TensorShape) -> TensorShape {
        match *self {
            Layer::Conv2d {
                out_channels,
                kernel,
                stride,
                padding,
                groups,
                ..
            } => {
                let (_g, out_c) = resolve_groups(groups, input.c, out_channels);
                TensorShape::chw(
                    out_c,
                    conv_out(input.h, kernel, stride, padding),
                    conv_out(input.w, kernel, stride, padding),
                )
            }
            Layer::Dense { units, .. } => {
                assert!(
                    input.is_vector(),
                    "dense layer expects a flat vector input, got {input}"
                );
                TensorShape::vector(units)
            }
            Layer::BatchNorm | Layer::LayerNorm | Layer::Activation(_) | Layer::Add => input,
            Layer::MaxPool {
                size,
                stride,
                padding,
            }
            | Layer::AvgPool {
                size,
                stride,
                padding,
            } => TensorShape::chw(
                input.c,
                conv_out(input.h, size, stride, padding),
                conv_out(input.w, size, stride, padding),
            ),
            Layer::GlobalAvgPool => TensorShape::vector(input.c),
            Layer::ZeroPad { amount } => {
                TensorShape::chw(input.c, input.h + 2 * amount, input.w + 2 * amount)
            }
            Layer::Flatten => TensorShape::vector(
                u32::try_from(input.elements()).expect("flattened tensor exceeds u32"),
            ),
            Layer::Concat => input, // graph overrides with summed channels
        }
    }

    /// Number of trainable + running parameters, Keras accounting.
    pub fn param_count(&self, input: TensorShape) -> u64 {
        match *self {
            Layer::Conv2d {
                out_channels,
                kernel,
                use_bias,
                groups,
                ..
            } => {
                let (g, out_c) = resolve_groups(groups, input.c, out_channels);
                let weights =
                    kernel as u64 * kernel as u64 * (input.c as u64 / g as u64) * out_c as u64;
                weights + if use_bias { out_c as u64 } else { 0 }
            }
            Layer::Dense { units, use_bias } => {
                let weights = input.c as u64 * units as u64;
                weights + if use_bias { units as u64 } else { 0 }
            }
            Layer::BatchNorm => 4 * input.c as u64,
            Layer::LayerNorm => 2 * input.c as u64,
            _ => 0,
        }
    }

    /// Multiply-accumulate operations for one inference pass.
    pub fn mac_count(&self, input: TensorShape) -> u64 {
        match *self {
            Layer::Conv2d {
                out_channels,
                kernel,
                stride,
                padding,
                groups,
                ..
            } => {
                let (g, out_c) = resolve_groups(groups, input.c, out_channels);
                let oh = conv_out(input.h, kernel, stride, padding) as u64;
                let ow = conv_out(input.w, kernel, stride, padding) as u64;
                oh * ow * out_c as u64 * kernel as u64 * kernel as u64 * (input.c as u64 / g as u64)
            }
            Layer::Dense { units, .. } => input.c as u64 * units as u64,
            // Elementwise normalizers pass the whole tensor through the
            // digital datapath: one MAC-equivalent per element (exp /
            // rsqrt via LUT, one multiply-accumulate for the
            // normalization). For a `seq × seq` attention score matrix
            // this is anything but negligible.
            Layer::Activation(Activation::Softmax) | Layer::LayerNorm => input.elements(),
            _ => 0,
        }
    }
}

/// Resolves the depthwise marker: returns `(groups, out_channels)`.
fn resolve_groups(groups: u32, in_channels: u32, out_channels: u32) -> (u32, u32) {
    if groups == u32::MAX {
        assert!(
            out_channels == 0,
            "depthwise marker must not set out_channels"
        );
        (in_channels, in_channels)
    } else {
        assert!(groups >= 1, "groups must be >= 1");
        assert!(
            in_channels.is_multiple_of(groups) && out_channels.is_multiple_of(groups),
            "channels not divisible by groups"
        );
        (groups, out_channels)
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Layer::Conv2d {
                out_channels,
                kernel,
                stride,
                groups,
                ..
            } => {
                if groups == u32::MAX {
                    write!(f, "DepthwiseConv{kernel}x{kernel}/s{stride}")
                } else {
                    write!(f, "Conv{kernel}x{kernel}x{out_channels}/s{stride}")
                }
            }
            Layer::Dense { units, .. } => write!(f, "Dense{units}"),
            Layer::BatchNorm => write!(f, "BatchNorm"),
            Layer::LayerNorm => write!(f, "LayerNorm"),
            Layer::Activation(a) => write!(f, "{a:?}"),
            Layer::MaxPool { size, stride, .. } => write!(f, "MaxPool{size}/s{stride}"),
            Layer::AvgPool { size, stride, .. } => write!(f, "AvgPool{size}/s{stride}"),
            Layer::GlobalAvgPool => write!(f, "GlobalAvgPool"),
            Layer::ZeroPad { amount } => write!(f, "ZeroPad{amount}"),
            Layer::Flatten => write!(f, "Flatten"),
            Layer::Add => write!(f, "Add"),
            Layer::Concat => write!(f, "Concat"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_params_with_bias() {
        // 5x5x3 -> 6 filters + 6 biases = 456 (LeNet conv1 on RGB).
        let l = Layer::conv(6, 5, 1, Padding::Valid);
        assert_eq!(l.param_count(TensorShape::chw(3, 32, 32)), 456);
    }

    #[test]
    fn conv_params_without_bias() {
        let l = Layer::conv_nb(64, 7, 2, Padding::Valid);
        assert_eq!(l.param_count(TensorShape::chw(3, 230, 230)), 7 * 7 * 3 * 64);
    }

    #[test]
    fn depthwise_params() {
        let l = Layer::depthwise_nb(3, 1, Padding::Same);
        // 3x3 kernel per channel, 32 channels, no bias.
        assert_eq!(l.param_count(TensorShape::chw(32, 112, 112)), 288);
        let out = l.output_shape(TensorShape::chw(32, 112, 112));
        assert_eq!(out, TensorShape::chw(32, 112, 112));
    }

    #[test]
    fn dense_params_and_macs() {
        let l = Layer::dense(10);
        let input = TensorShape::vector(84);
        assert_eq!(l.param_count(input), 850);
        assert_eq!(l.mac_count(input), 840);
    }

    #[test]
    fn batchnorm_params() {
        assert_eq!(
            Layer::BatchNorm.param_count(TensorShape::chw(64, 1, 1)),
            256
        );
    }

    #[test]
    fn layernorm_params_and_shape() {
        let input = TensorShape::chw(768, 197, 1);
        assert_eq!(Layer::LayerNorm.param_count(input), 1536);
        assert_eq!(Layer::LayerNorm.output_shape(input), input);
        assert!(!Layer::LayerNorm.is_weighted());
    }

    #[test]
    fn softmax_and_layernorm_macs_are_per_element() {
        let scores = TensorShape::chw(512, 512, 1); // seq × seq
        let softmax = Layer::Activation(Activation::Softmax);
        assert_eq!(softmax.mac_count(scores), 512 * 512);
        assert_eq!(Layer::LayerNorm.mac_count(scores), 512 * 512);
        // Other activations stay negligible.
        assert_eq!(Layer::Activation(Activation::Relu).mac_count(scores), 0);
    }

    #[test]
    fn conv_macs() {
        // VGG16 conv1_1: 224x224x64 outputs, 3x3x3 window.
        let l = Layer::conv(64, 3, 1, Padding::Same);
        let macs = l.mac_count(TensorShape::chw(3, 224, 224));
        assert_eq!(macs, 224 * 224 * 64 * 9 * 3);
    }

    #[test]
    fn shapes_through_common_layers() {
        let s = TensorShape::chw(3, 224, 224);
        let s = Layer::ZeroPad { amount: 3 }.output_shape(s);
        assert_eq!(s, TensorShape::chw(3, 230, 230));
        let s = Layer::conv(64, 7, 2, Padding::Valid).output_shape(s);
        assert_eq!(s, TensorShape::chw(64, 112, 112));
        let s = Layer::ZeroPad { amount: 1 }.output_shape(s);
        let s = Layer::MaxPool {
            size: 3,
            stride: 2,
            padding: Padding::Valid,
        }
        .output_shape(s);
        assert_eq!(s, TensorShape::chw(64, 56, 56));
        let s = Layer::GlobalAvgPool.output_shape(s);
        assert_eq!(s, TensorShape::vector(64));
    }

    #[test]
    fn weighted_detection() {
        assert!(Layer::conv(8, 3, 1, Padding::Same).is_weighted());
        assert!(Layer::dense(8).is_weighted());
        assert!(!Layer::BatchNorm.is_weighted());
        assert!(!Layer::Flatten.is_weighted());
    }

    #[test]
    fn flatten_shape() {
        let s = Layer::Flatten.output_shape(TensorShape::chw(16, 5, 5));
        assert_eq!(s, TensorShape::vector(400));
    }

    #[test]
    #[should_panic(expected = "flat vector input")]
    fn dense_rejects_spatial_input() {
        let _ = Layer::dense(10).output_shape(TensorShape::chw(16, 5, 5));
    }

    #[test]
    fn grouped_conv() {
        let l = Layer::Conv2d {
            out_channels: 64,
            kernel: 3,
            stride: 1,
            padding: Padding::Same,
            use_bias: false,
            groups: 4,
        };
        let input = TensorShape::chw(32, 28, 28);
        assert_eq!(l.param_count(input), 9 * (32 / 4) as u64 * 64);
        assert_eq!(l.mac_count(input), 28 * 28 * 64 * 9 * 8);
    }
}
