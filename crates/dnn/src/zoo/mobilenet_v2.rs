//! MobileNetV2 (Sandler et al., 2018), width multiplier 1.0, Keras layout.
//!
//! 52 convolution layers (stem + 16 inverted-residual blocks + final 1×1)
//! counting depthwise convolutions, one FC classifier, 3,538,984 total
//! parameters. Every convolution is bias-free and followed by batch norm.

use crate::graph::{Model, NodeId};
use crate::layer::{Activation, Layer};
use crate::shape::{Padding, TensorShape};

/// Builds MobileNetV2: 3,538,984 parameters, 52 conv + 1 FC layers.
///
/// # Examples
///
/// ```
/// let m = lumos_dnn::zoo::mobilenet_v2();
/// assert_eq!(m.param_count(), 3_538_984);
/// ```
pub fn mobilenet_v2() -> Model {
    let mut m = Model::new("mobilenet_v2", TensorShape::chw(3, 224, 224));
    let ok = "mobilenet_v2 graph is well-formed";

    m.push("Conv1", Layer::conv_nb(32, 3, 2, Padding::Same))
        .expect(ok);
    m.push("bn_Conv1", Layer::BatchNorm).expect(ok);
    m.push("Conv1_relu", Layer::Activation(Activation::Relu6))
        .expect(ok);

    // (expansion t, output channels c, repeats n, first stride s)
    let config: &[(u32, u32, usize, u32)] = &[
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];

    let mut block_id = 0usize;
    for &(t, c, n, s) in config {
        for i in 0..n {
            let stride = if i == 0 { s } else { 1 };
            inverted_residual(&mut m, block_id, t, c, stride);
            block_id += 1;
        }
    }

    m.push("Conv_1", Layer::conv_nb(1280, 1, 1, Padding::Valid))
        .expect(ok);
    m.push("Conv_1_bn", Layer::BatchNorm).expect(ok);
    m.push("out_relu", Layer::Activation(Activation::Relu6))
        .expect(ok);
    m.push("global_average_pooling2d", Layer::GlobalAvgPool)
        .expect(ok);
    m.push("predictions", Layer::dense(1000)).expect(ok);
    m.push("softmax", Layer::Activation(Activation::Softmax))
        .expect(ok);
    m
}

/// Appends one inverted-residual block: optional 1×1 expansion, 3×3
/// depthwise, 1×1 linear projection, with a residual Add when the block
/// is stride-1 and shape-preserving.
fn inverted_residual(m: &mut Model, id: usize, expansion: u32, out_channels: u32, stride: u32) {
    let ok = "mobilenet_v2 graph is well-formed";
    let input: NodeId = m.tail().expect("block needs a predecessor");
    let in_channels = m.output_shape_of(input).c;
    let b = format!("block_{id}");

    let mut x = input;
    if expansion != 1 {
        x = m
            .add_node(
                &format!("{b}_expand"),
                Layer::conv_nb(in_channels * expansion, 1, 1, Padding::Valid),
                vec![x],
            )
            .expect(ok);
        x = m
            .add_node(&format!("{b}_expand_bn"), Layer::BatchNorm, vec![x])
            .expect(ok);
        x = m
            .add_node(
                &format!("{b}_expand_relu"),
                Layer::Activation(Activation::Relu6),
                vec![x],
            )
            .expect(ok);
    }

    x = m
        .add_node(
            &format!("{b}_depthwise"),
            Layer::depthwise_nb(3, stride, Padding::Same),
            vec![x],
        )
        .expect(ok);
    x = m
        .add_node(&format!("{b}_depthwise_bn"), Layer::BatchNorm, vec![x])
        .expect(ok);
    x = m
        .add_node(
            &format!("{b}_depthwise_relu"),
            Layer::Activation(Activation::Relu6),
            vec![x],
        )
        .expect(ok);

    x = m
        .add_node(
            &format!("{b}_project"),
            Layer::conv_nb(out_channels, 1, 1, Padding::Valid),
            vec![x],
        )
        .expect(ok);
    x = m
        .add_node(&format!("{b}_project_bn"), Layer::BatchNorm, vec![x])
        .expect(ok);

    if stride == 1 && in_channels == out_channels {
        m.add_node(&format!("{b}_add"), Layer::Add, vec![input, x])
            .expect(ok);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_param_count() {
        assert_eq!(mobilenet_v2().param_count(), 3_538_984);
    }

    #[test]
    fn layer_counts() {
        let m = mobilenet_v2();
        assert_eq!(m.conv_layer_count(), 52);
        assert_eq!(m.fc_layer_count(), 1);
    }

    #[test]
    fn residual_blocks_present() {
        let m = mobilenet_v2();
        // Blocks 2,4,5,7..9,11,12,14,15 are stride-1 shape-preserving:
        // MobileNetV2 has 10 residual adds.
        let adds = m
            .nodes()
            .iter()
            .filter(|n| n.name.ends_with("_add"))
            .count();
        assert_eq!(adds, 10);
    }

    #[test]
    fn head_shapes() {
        let m = mobilenet_v2();
        let conv1 = m
            .nodes()
            .iter()
            .find(|n| n.name == "Conv_1")
            .expect("final conv exists");
        assert_eq!(conv1.input_shape, TensorShape::chw(320, 7, 7));
        assert_eq!(conv1.output_shape, TensorShape::chw(1280, 7, 7));
    }

    #[test]
    fn depthwise_layers_light() {
        let m = mobilenet_v2();
        let dw = m
            .nodes()
            .iter()
            .find(|n| n.name == "block_1_depthwise")
            .expect("depthwise exists");
        // 96 channels × 9 weights, no bias.
        assert_eq!(dw.layer.param_count(dw.input_shape), 864);
    }

    #[test]
    fn mac_count_about_0_3g() {
        let macs = mobilenet_v2().mac_count();
        assert!((macs as f64 - 0.31e9).abs() / 0.31e9 < 0.10, "{macs}");
    }
}
