//! The Table 2 model zoo.
//!
//! Each model is reconstructed layer-by-layer following its original
//! publication (and the Keras reference implementation for parameter
//! accounting), so that total parameter counts match the paper's Table 2
//! **exactly**:
//!
//! | Model | CONV layers | FC layers | Parameters |
//! |---|---|---|---|
//! | LeNet-5 | 3 | 2 | 62,006 |
//! | ResNet-50 | 53 | 1 | 25,636,712 |
//! | DenseNet-121 | 120 | 1 | 8,062,504 |
//! | VGG-16 | 13 | 3 | 138,357,544 |
//! | MobileNetV2 | 52 | 1 | 3,538,984 |
//!
//! These exact totals double as integration tests of the shape-inference
//! and parameter-accounting machinery.

mod densenet121;
mod lenet5;
mod mobilenet_v2;
mod resnet50;
mod vgg16;

pub use densenet121::densenet121;
pub use lenet5::lenet5;
pub use mobilenet_v2::mobilenet_v2;
pub use resnet50::resnet50;
pub use vgg16::vgg16;

use crate::graph::Model;

/// All five Table 2 models, in the paper's row order.
pub fn table2_models() -> Vec<Model> {
    vec![lenet5(), resnet50(), densenet121(), vgg16(), mobilenet_v2()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_exact_parameter_counts() {
        let expected: &[(&str, u64)] = &[
            ("lenet5", 62_006),
            ("resnet50", 25_636_712),
            ("densenet121", 8_062_504),
            ("vgg16", 138_357_544),
            ("mobilenet_v2", 3_538_984),
        ];
        for (model, (name, params)) in table2_models().iter().zip(expected) {
            assert_eq!(model.name(), *name);
            assert_eq!(
                model.param_count(),
                *params,
                "{name} parameter count diverges from Table 2"
            );
        }
    }

    #[test]
    fn table2_exact_layer_counts() {
        let expected: &[(usize, usize)] = &[(3, 2), (53, 1), (120, 1), (13, 3), (52, 1)];
        for (model, (conv, fc)) in table2_models().iter().zip(expected) {
            assert_eq!(
                (model.conv_layer_count(), model.fc_layer_count()),
                (*conv, *fc),
                "{} layer counts diverge from Table 2",
                model.name()
            );
        }
    }

    #[test]
    fn mac_counts_in_published_ballpark() {
        // Published single-inference MAC counts (±15%):
        // VGG16 ≈ 15.5 G, ResNet50 ≈ 3.9 G, DenseNet121 ≈ 2.9 G,
        // MobileNetV2 ≈ 0.3 G.
        let check = |m: &Model, expect: f64| {
            let macs = m.mac_count() as f64;
            assert!(
                (macs / expect - 1.0).abs() < 0.15,
                "{}: {macs:.3e} vs expected {expect:.3e}",
                m.name()
            );
        };
        check(&vgg16(), 15.5e9);
        check(&resnet50(), 3.9e9);
        check(&densenet121(), 2.9e9);
        check(&mobilenet_v2(), 0.31e9);
    }

    #[test]
    fn every_model_ends_in_classifier() {
        for m in table2_models() {
            let last_weighted = m.weighted_nodes().last().expect("has weighted layers");
            let out = last_weighted.output_shape;
            assert!(out.is_vector(), "{} head is not a vector", m.name());
            assert!(out.c == 10 || out.c == 1000);
        }
    }
}
