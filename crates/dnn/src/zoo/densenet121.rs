//! DenseNet-121 (Huang et al., 2017), Keras `applications` layout.
//!
//! 120 convolution layers (1 stem + 58 dense layers × 2 convs + 3
//! transition convs) and one FC classifier; 8,062,504 total parameters
//! with growth rate 32 and compression 0.5. Every dense layer is
//! BN→ReLU→1×1(128)→BN→ReLU→3×3(32) concatenated onto its input.

use crate::graph::{Model, NodeId};
use crate::layer::{Activation, Layer};
use crate::shape::{Padding, TensorShape};

const GROWTH: u32 = 32;

/// Builds DenseNet-121: 8,062,504 parameters, 120 conv + 1 FC layers.
///
/// # Examples
///
/// ```
/// let m = lumos_dnn::zoo::densenet121();
/// assert_eq!(m.param_count(), 8_062_504);
/// ```
pub fn densenet121() -> Model {
    let mut m = Model::new("densenet121", TensorShape::chw(3, 224, 224));
    let ok = "densenet121 graph is well-formed";

    // Stem.
    m.push("zero_padding2d", Layer::ZeroPad { amount: 3 })
        .expect(ok);
    m.push("conv1/conv", Layer::conv_nb(64, 7, 2, Padding::Valid))
        .expect(ok);
    m.push("conv1/bn", Layer::BatchNorm).expect(ok);
    m.push("conv1/relu", Layer::Activation(Activation::Relu))
        .expect(ok);
    m.push("zero_padding2d_1", Layer::ZeroPad { amount: 1 })
        .expect(ok);
    m.push(
        "pool1",
        Layer::MaxPool {
            size: 3,
            stride: 2,
            padding: Padding::Valid,
        },
    )
    .expect(ok);

    let block_sizes: &[usize] = &[6, 12, 24, 16];
    for (bi, &layers) in block_sizes.iter().enumerate() {
        dense_block(&mut m, &format!("conv{}", bi + 2), layers);
        if bi + 1 < block_sizes.len() {
            transition(&mut m, &format!("pool{}", bi + 2));
        }
    }

    m.push("bn", Layer::BatchNorm).expect(ok);
    m.push("relu", Layer::Activation(Activation::Relu))
        .expect(ok);
    m.push("avg_pool", Layer::GlobalAvgPool).expect(ok);
    m.push("predictions", Layer::dense(1000)).expect(ok);
    m.push("softmax", Layer::Activation(Activation::Softmax))
        .expect(ok);
    m
}

/// Appends `layers` dense layers, each concatenating its 32-channel
/// output onto the running feature map.
fn dense_block(m: &mut Model, name: &str, layers: usize) {
    let ok = "densenet121 graph is well-formed";
    for li in 0..layers {
        let input: NodeId = m.tail().expect("dense block needs a predecessor");
        let b = format!("{name}_block{}", li + 1);

        let x = m
            .add_node(&format!("{b}_0_bn"), Layer::BatchNorm, vec![input])
            .expect(ok);
        let x = m
            .add_node(
                &format!("{b}_0_relu"),
                Layer::Activation(Activation::Relu),
                vec![x],
            )
            .expect(ok);
        let x = m
            .add_node(
                &format!("{b}_1_conv"),
                Layer::conv_nb(4 * GROWTH, 1, 1, Padding::Valid),
                vec![x],
            )
            .expect(ok);
        let x = m
            .add_node(&format!("{b}_1_bn"), Layer::BatchNorm, vec![x])
            .expect(ok);
        let x = m
            .add_node(
                &format!("{b}_1_relu"),
                Layer::Activation(Activation::Relu),
                vec![x],
            )
            .expect(ok);
        let x = m
            .add_node(
                &format!("{b}_2_conv"),
                Layer::conv_nb(GROWTH, 3, 1, Padding::Same),
                vec![x],
            )
            .expect(ok);
        m.add_node(&format!("{b}_concat"), Layer::Concat, vec![input, x])
            .expect(ok);
    }
}

/// Appends a transition: BN→ReLU→1×1(C/2)→AvgPool2/2.
fn transition(m: &mut Model, name: &str) {
    let ok = "densenet121 graph is well-formed";
    let input = m.tail().expect("transition needs a predecessor");
    let channels = m.output_shape_of(input).c;
    let x = m
        .add_node(&format!("{name}_bn"), Layer::BatchNorm, vec![input])
        .expect(ok);
    let x = m
        .add_node(
            &format!("{name}_relu"),
            Layer::Activation(Activation::Relu),
            vec![x],
        )
        .expect(ok);
    let x = m
        .add_node(
            &format!("{name}_conv"),
            Layer::conv_nb(channels / 2, 1, 1, Padding::Valid),
            vec![x],
        )
        .expect(ok);
    m.add_node(
        &format!("{name}_pool"),
        Layer::AvgPool {
            size: 2,
            stride: 2,
            padding: Padding::Valid,
        },
        vec![x],
    )
    .expect(ok);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_param_count() {
        assert_eq!(densenet121().param_count(), 8_062_504);
    }

    #[test]
    fn layer_counts() {
        let m = densenet121();
        assert_eq!(m.conv_layer_count(), 120);
        assert_eq!(m.fc_layer_count(), 1);
    }

    #[test]
    fn channel_growth_per_block() {
        let m = densenet121();
        let shape_of = |name: &str| {
            m.nodes()
                .iter()
                .find(|n| n.name == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .output_shape
        };
        // Block outputs before transitions: 64+6·32=256, 128+12·32=512,
        // 256+24·32=1024, 512+16·32=1024.
        assert_eq!(shape_of("conv2_block6_concat").c, 256);
        assert_eq!(shape_of("conv3_block12_concat").c, 512);
        assert_eq!(shape_of("conv4_block24_concat").c, 1024);
        assert_eq!(shape_of("conv5_block16_concat").c, 1024);
        // Spatial pyramid.
        assert_eq!(
            shape_of("conv2_block6_concat"),
            TensorShape::chw(256, 56, 56)
        );
        assert_eq!(
            shape_of("conv5_block16_concat"),
            TensorShape::chw(1024, 7, 7)
        );
    }

    #[test]
    fn transitions_halve_channels() {
        let m = densenet121();
        let t1 = m
            .nodes()
            .iter()
            .find(|n| n.name == "pool2_conv")
            .expect("transition conv exists");
        assert_eq!(t1.output_shape.c, 128);
    }

    #[test]
    fn mac_count_about_2_9g() {
        let macs = densenet121().mac_count();
        assert!((macs as f64 - 2.87e9).abs() / 2.87e9 < 0.07, "{macs}");
    }
}
