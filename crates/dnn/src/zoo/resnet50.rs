//! ResNet-50 (He et al., 2016), Keras `applications` layout.
//!
//! 53 convolution layers (1 stem + 48 bottleneck + 4 projection) and one
//! FC classifier; 25,636,712 total parameters including the 4-per-channel
//! batch-norm statistics. Strides follow the Keras v1 convention (the
//! first 1×1 of a downsampling bottleneck carries the stride).

use crate::graph::{Model, NodeId};
use crate::layer::{Activation, Layer};
use crate::shape::{Padding, TensorShape};

/// Builds ResNet-50: 25,636,712 parameters, 53 conv + 1 FC layers.
///
/// # Examples
///
/// ```
/// let m = lumos_dnn::zoo::resnet50();
/// assert_eq!(m.param_count(), 25_636_712);
/// ```
pub fn resnet50() -> Model {
    let mut m = Model::new("resnet50", TensorShape::chw(3, 224, 224));
    let ok = "resnet50 graph is well-formed";

    // Stem.
    m.push("conv1_pad", Layer::ZeroPad { amount: 3 }).expect(ok);
    m.push("conv1", Layer::conv(64, 7, 2, Padding::Valid))
        .expect(ok);
    m.push("conv1_bn", Layer::BatchNorm).expect(ok);
    m.push("conv1_relu", Layer::Activation(Activation::Relu))
        .expect(ok);
    m.push("pool1_pad", Layer::ZeroPad { amount: 1 }).expect(ok);
    m.push(
        "pool1",
        Layer::MaxPool {
            size: 3,
            stride: 2,
            padding: Padding::Valid,
        },
    )
    .expect(ok);

    // Bottleneck stages: (blocks, width, first-block stride).
    let stages: &[(usize, u32, u32)] = &[(3, 64, 1), (4, 128, 2), (6, 256, 2), (3, 512, 2)];
    for (si, &(blocks, width, first_stride)) in stages.iter().enumerate() {
        for bi in 0..blocks {
            let stride = if bi == 0 { first_stride } else { 1 };
            let project = bi == 0;
            bottleneck(
                &mut m,
                &format!("conv{}_{}", si + 2, bi + 1),
                width,
                stride,
                project,
            );
        }
    }

    m.push("avg_pool", Layer::GlobalAvgPool).expect(ok);
    m.push("predictions", Layer::dense(1000)).expect(ok);
    m.push("softmax", Layer::Activation(Activation::Softmax))
        .expect(ok);
    m
}

/// Appends one bottleneck block `1×1(w) → 3×3(w) → 1×1(4w)` with identity
/// or projection shortcut, returning nothing (tail advances to the block
/// output).
fn bottleneck(m: &mut Model, name: &str, width: u32, stride: u32, project: bool) {
    let ok = "resnet50 graph is well-formed";
    let input: NodeId = m.tail().expect("bottleneck needs a predecessor");

    let c1 = m
        .add_node(
            &format!("{name}_1_conv"),
            Layer::conv(width, 1, stride, Padding::Valid),
            vec![input],
        )
        .expect(ok);
    let c1 = m
        .add_node(&format!("{name}_1_bn"), Layer::BatchNorm, vec![c1])
        .expect(ok);
    let c1 = m
        .add_node(
            &format!("{name}_1_relu"),
            Layer::Activation(Activation::Relu),
            vec![c1],
        )
        .expect(ok);

    let c2 = m
        .add_node(
            &format!("{name}_2_conv"),
            Layer::conv(width, 3, 1, Padding::Same),
            vec![c1],
        )
        .expect(ok);
    let c2 = m
        .add_node(&format!("{name}_2_bn"), Layer::BatchNorm, vec![c2])
        .expect(ok);
    let c2 = m
        .add_node(
            &format!("{name}_2_relu"),
            Layer::Activation(Activation::Relu),
            vec![c2],
        )
        .expect(ok);

    let c3 = m
        .add_node(
            &format!("{name}_3_conv"),
            Layer::conv(width * 4, 1, 1, Padding::Valid),
            vec![c2],
        )
        .expect(ok);
    let c3 = m
        .add_node(&format!("{name}_3_bn"), Layer::BatchNorm, vec![c3])
        .expect(ok);

    let shortcut = if project {
        let p = m
            .add_node(
                &format!("{name}_0_conv"),
                Layer::conv(width * 4, 1, stride, Padding::Valid),
                vec![input],
            )
            .expect(ok);
        m.add_node(&format!("{name}_0_bn"), Layer::BatchNorm, vec![p])
            .expect(ok)
    } else {
        input
    };

    let sum = m
        .add_node(&format!("{name}_add"), Layer::Add, vec![shortcut, c3])
        .expect(ok);
    m.add_node(
        &format!("{name}_out"),
        Layer::Activation(Activation::Relu),
        vec![sum],
    )
    .expect(ok);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_param_count() {
        assert_eq!(resnet50().param_count(), 25_636_712);
    }

    #[test]
    fn layer_counts() {
        let m = resnet50();
        assert_eq!(m.conv_layer_count(), 53);
        assert_eq!(m.fc_layer_count(), 1);
    }

    #[test]
    fn stage_output_shapes() {
        let m = resnet50();
        let shape_of = |name: &str| {
            m.nodes()
                .iter()
                .find(|n| n.name == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .output_shape
        };
        assert_eq!(shape_of("pool1"), TensorShape::chw(64, 56, 56));
        assert_eq!(shape_of("conv2_3_out"), TensorShape::chw(256, 56, 56));
        assert_eq!(shape_of("conv3_4_out"), TensorShape::chw(512, 28, 28));
        assert_eq!(shape_of("conv4_6_out"), TensorShape::chw(1024, 14, 14));
        assert_eq!(shape_of("conv5_3_out"), TensorShape::chw(2048, 7, 7));
    }

    #[test]
    fn classifier_params() {
        let m = resnet50();
        let fc = m
            .nodes()
            .iter()
            .find(|n| n.name == "predictions")
            .expect("classifier exists");
        assert_eq!(fc.layer.param_count(fc.input_shape), 2_049_000);
    }

    #[test]
    fn mac_count_about_3_9g() {
        let macs = resnet50().mac_count();
        assert!((macs as f64 - 3.87e9).abs() / 3.87e9 < 0.05, "{macs}");
    }
}
