//! VGG-16 (Simonyan & Zisserman, 2015), configuration D.
//!
//! 13 convolution + 3 fully connected layers, 138,357,544 parameters —
//! the heavyweight of Table 2, dominated by the 102.8 M-parameter first
//! FC layer. All convolutions are 3×3 'same' with bias; no batch norm.

use crate::graph::Model;
use crate::layer::{Activation, Layer};
use crate::shape::{Padding, TensorShape};

/// Builds VGG-16: 138,357,544 parameters, 13 conv + 3 FC layers.
///
/// # Examples
///
/// ```
/// let m = lumos_dnn::zoo::vgg16();
/// assert_eq!(m.param_count(), 138_357_544);
/// ```
pub fn vgg16() -> Model {
    let mut m = Model::new("vgg16", TensorShape::chw(3, 224, 224));
    let blocks: &[(usize, u32)] = &[(2, 64), (2, 128), (3, 256), (3, 512), (3, 512)];

    for (bi, &(convs, channels)) in blocks.iter().enumerate() {
        for ci in 0..convs {
            let name = format!("block{}_conv{}", bi + 1, ci + 1);
            m.push(&name, Layer::conv(channels, 3, 1, Padding::Same))
                .expect("vgg16 graph is well-formed");
            m.push(&format!("{name}_relu"), Layer::Activation(Activation::Relu))
                .expect("vgg16 graph is well-formed");
        }
        m.push(
            &format!("block{}_pool", bi + 1),
            Layer::MaxPool {
                size: 2,
                stride: 2,
                padding: Padding::Valid,
            },
        )
        .expect("vgg16 graph is well-formed");
    }

    m.push("flatten", Layer::Flatten).expect("well-formed");
    m.push("fc1", Layer::dense(4096)).expect("well-formed");
    m.push("fc1_relu", Layer::Activation(Activation::Relu))
        .expect("well-formed");
    m.push("fc2", Layer::dense(4096)).expect("well-formed");
    m.push("fc2_relu", Layer::Activation(Activation::Relu))
        .expect("well-formed");
    m.push("predictions", Layer::dense(1000))
        .expect("well-formed");
    m.push("softmax", Layer::Activation(Activation::Softmax))
        .expect("well-formed");
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_param_count() {
        assert_eq!(vgg16().param_count(), 138_357_544);
    }

    #[test]
    fn layer_counts() {
        let m = vgg16();
        assert_eq!(m.conv_layer_count(), 13);
        assert_eq!(m.fc_layer_count(), 3);
    }

    #[test]
    fn fc1_dominates() {
        let m = vgg16();
        let fc1 = m
            .nodes()
            .iter()
            .find(|n| n.name == "fc1")
            .expect("fc1 exists");
        assert_eq!(fc1.input_shape, TensorShape::vector(25_088));
        assert_eq!(fc1.layer.param_count(fc1.input_shape), 102_764_544);
    }

    #[test]
    fn feature_map_pyramid() {
        let m = vgg16();
        let pool5 = m
            .nodes()
            .iter()
            .find(|n| n.name == "block5_pool")
            .expect("pool5 exists");
        assert_eq!(pool5.output_shape, TensorShape::chw(512, 7, 7));
    }

    #[test]
    fn mac_count_about_15_5g() {
        let macs = vgg16().mac_count();
        assert!((macs as f64 - 15.47e9).abs() / 15.47e9 < 0.05, "{macs}");
    }
}
