//! LeNet-5 (LeCun et al., 1998) on 32×32 RGB inputs.
//!
//! The paper's Table 2 lists 3 CONV + 2 FC layers and 62,006 parameters,
//! which corresponds to the classic architecture with C5 expressed as a
//! convolution and a 3-channel (CIFAR-style) input — the RGB first layer
//! contributes the extra 300 parameters over the grayscale variant's
//! 61,706.

use crate::graph::Model;
use crate::layer::{Activation, Layer};
use crate::shape::{Padding, TensorShape};

/// Builds LeNet-5: 62,006 parameters, 3 conv + 2 FC layers.
///
/// # Examples
///
/// ```
/// let m = lumos_dnn::zoo::lenet5();
/// assert_eq!(m.param_count(), 62_006);
/// ```
pub fn lenet5() -> Model {
    let mut m = Model::new("lenet5", TensorShape::chw(3, 32, 32));
    let push = |m: &mut Model, name: &str, layer: Layer| {
        m.push(name, layer).expect("lenet5 graph is well-formed");
    };

    push(&mut m, "c1", Layer::conv(6, 5, 1, Padding::Valid));
    push(&mut m, "c1_act", Layer::Activation(Activation::Tanh));
    push(
        &mut m,
        "s2",
        Layer::AvgPool {
            size: 2,
            stride: 2,
            padding: Padding::Valid,
        },
    );
    push(&mut m, "c3", Layer::conv(16, 5, 1, Padding::Valid));
    push(&mut m, "c3_act", Layer::Activation(Activation::Tanh));
    push(
        &mut m,
        "s4",
        Layer::AvgPool {
            size: 2,
            stride: 2,
            padding: Padding::Valid,
        },
    );
    push(&mut m, "c5", Layer::conv(120, 5, 1, Padding::Valid));
    push(&mut m, "c5_act", Layer::Activation(Activation::Tanh));
    push(&mut m, "flatten", Layer::Flatten);
    push(&mut m, "f6", Layer::dense(84));
    push(&mut m, "f6_act", Layer::Activation(Activation::Tanh));
    push(&mut m, "output", Layer::dense(10));
    push(&mut m, "softmax", Layer::Activation(Activation::Softmax));
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_param_count() {
        assert_eq!(lenet5().param_count(), 62_006);
    }

    #[test]
    fn layer_counts() {
        let m = lenet5();
        assert_eq!(m.conv_layer_count(), 3);
        assert_eq!(m.fc_layer_count(), 2);
    }

    #[test]
    fn per_layer_params() {
        let m = lenet5();
        let params: Vec<u64> = m
            .weighted_nodes()
            .map(|n| n.layer.param_count(n.input_shape))
            .collect();
        assert_eq!(params, vec![456, 2_416, 48_120, 10_164, 850]);
    }

    #[test]
    fn c5_collapses_to_vector() {
        let m = lenet5();
        let c5 = m
            .nodes()
            .iter()
            .find(|n| n.name == "c5")
            .expect("c5 exists");
        assert_eq!(c5.output_shape, TensorShape::chw(120, 1, 1));
    }
}
