//! Tensor shapes and convolution arithmetic.

use std::fmt;

/// The shape of an activation tensor in channels-first `(C, H, W)` layout.
///
/// Fully-connected activations use `(C, 1, 1)`.
///
/// # Examples
///
/// ```
/// use lumos_dnn::shape::TensorShape;
///
/// let s = TensorShape::chw(64, 56, 56);
/// assert_eq!(s.elements(), 64 * 56 * 56);
/// assert_eq!(TensorShape::vector(1000).elements(), 1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TensorShape {
    /// Channel count.
    pub c: u32,
    /// Height.
    pub h: u32,
    /// Width.
    pub w: u32,
}

impl TensorShape {
    /// Creates a `(C, H, W)` shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn chw(c: u32, h: u32, w: u32) -> Self {
        assert!(c > 0 && h > 0 && w > 0, "tensor dims must be positive");
        TensorShape { c, h, w }
    }

    /// A flat feature vector of `n` elements.
    pub fn vector(n: u32) -> Self {
        TensorShape::chw(n, 1, 1)
    }

    /// Total element count.
    pub fn elements(&self) -> u64 {
        self.c as u64 * self.h as u64 * self.w as u64
    }

    /// `true` when the shape is a flat vector.
    pub fn is_vector(&self) -> bool {
        self.h == 1 && self.w == 1
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_vector() {
            write!(f, "({})", self.c)
        } else {
            write!(f, "({}, {}, {})", self.c, self.h, self.w)
        }
    }
}

/// Spatial padding policy, following Keras semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Padding {
    /// Output spatial size is `ceil(in / stride)`.
    Same,
    /// No implicit padding: `floor((in - k) / stride) + 1`.
    Valid,
}

/// Output spatial size of a convolution/pool window.
///
/// # Panics
///
/// Panics if `stride == 0`, `kernel == 0`, or a `Valid` window does not
/// fit (`kernel > input`).
///
/// # Examples
///
/// ```
/// use lumos_dnn::shape::{conv_out, Padding};
///
/// assert_eq!(conv_out(224, 3, 1, Padding::Same), 224);
/// assert_eq!(conv_out(224, 7, 2, Padding::Valid), 109);
/// assert_eq!(conv_out(112, 3, 2, Padding::Same), 56);
/// ```
pub fn conv_out(input: u32, kernel: u32, stride: u32, padding: Padding) -> u32 {
    assert!(stride > 0, "stride must be positive");
    assert!(kernel > 0, "kernel must be positive");
    match padding {
        Padding::Same => input.div_ceil(stride),
        Padding::Valid => {
            assert!(
                kernel <= input,
                "valid convolution window {kernel} larger than input {input}"
            );
            (input - kernel) / stride + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_counts() {
        assert_eq!(TensorShape::chw(3, 224, 224).elements(), 150_528);
        assert_eq!(TensorShape::vector(4096).elements(), 4096);
    }

    #[test]
    fn vector_detection() {
        assert!(TensorShape::vector(10).is_vector());
        assert!(!TensorShape::chw(3, 2, 1).is_vector());
    }

    #[test]
    fn same_padding_divides_by_stride() {
        assert_eq!(conv_out(224, 3, 2, Padding::Same), 112);
        assert_eq!(conv_out(113, 3, 2, Padding::Same), 57);
        assert_eq!(conv_out(7, 3, 1, Padding::Same), 7);
    }

    #[test]
    fn valid_padding_shrinks() {
        assert_eq!(conv_out(32, 5, 1, Padding::Valid), 28);
        assert_eq!(conv_out(28, 2, 2, Padding::Valid), 14);
        assert_eq!(conv_out(5, 5, 1, Padding::Valid), 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TensorShape::chw(64, 56, 56).to_string(), "(64, 56, 56)");
        assert_eq!(TensorShape::vector(1000).to_string(), "(1000)");
    }

    #[test]
    #[should_panic(expected = "larger than input")]
    fn valid_window_must_fit() {
        let _ = conv_out(4, 5, 1, Padding::Valid);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dim_rejected() {
        let _ = TensorShape::chw(0, 1, 1);
    }
}
