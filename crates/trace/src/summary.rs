//! Span-time attribution: the "where does the nanosecond go" rollup.
//!
//! Groups every span's duration by its category — the attribution
//! dimension the instrumented layers encode there (`kernel:conv3x3`,
//! `link:hbm`, `link:phnet`, `prefill`, `decode-tick`, …) — into a
//! ranked table. `lumos_bench` renders it as an aligned-text table;
//! the raw rows are available here for programmatic use.

use crate::event::{EventKind, TraceEvent};

/// One attribution bucket: a span category's total time and count.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionRow {
    /// The span category attributed to.
    pub cat: String,
    /// Spans in the bucket.
    pub count: u64,
    /// Total span time, picoseconds.
    pub total_ps: u64,
}

/// Span time grouped by category, ranked by total time (descending,
/// ties broken by category name — deterministic).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Attribution {
    rows: Vec<AttributionRow>,
    total_ps: u64,
}

impl Attribution {
    /// Attributes every span in `events` to its category. Instants,
    /// counters, and metadata are ignored.
    pub fn of_spans(events: &[TraceEvent]) -> Self {
        let mut rows: Vec<AttributionRow> = Vec::new();
        let mut total_ps = 0u64;
        for e in events {
            let EventKind::Span { dur_ps } = e.kind else {
                continue;
            };
            total_ps += dur_ps;
            match rows.iter_mut().find(|r| r.cat == e.cat) {
                Some(r) => {
                    r.count += 1;
                    r.total_ps += dur_ps;
                }
                None => rows.push(AttributionRow {
                    cat: e.cat.clone(),
                    count: 1,
                    total_ps: dur_ps,
                }),
            }
        }
        rows.sort_by(|a, b| b.total_ps.cmp(&a.total_ps).then_with(|| a.cat.cmp(&b.cat)));
        Attribution { rows, total_ps }
    }

    /// The ranked buckets, largest total first.
    pub fn rows(&self) -> &[AttributionRow] {
        &self.rows
    }

    /// The `k` largest buckets.
    pub fn top_k(&self, k: usize) -> &[AttributionRow] {
        &self.rows[..k.min(self.rows.len())]
    }

    /// Total attributed span time, picoseconds.
    pub fn total_ps(&self) -> u64 {
        self.total_ps
    }

    /// A bucket's share of the total span time (0 when nothing was
    /// attributed).
    pub fn share(&self, row: &AttributionRow) -> f64 {
        if self.total_ps == 0 {
            0.0
        } else {
            row.total_ps as f64 / self.total_ps as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ArgValue;

    fn span(cat: &str, dur_ps: u64) -> TraceEvent {
        TraceEvent {
            name: "n".into(),
            cat: cat.into(),
            pid: 0,
            tid: 0,
            ts_ps: 0,
            kind: EventKind::Span { dur_ps },
            args: vec![("x", ArgValue::U64(1))],
        }
    }

    fn instant(cat: &str) -> TraceEvent {
        TraceEvent {
            name: "n".into(),
            cat: cat.into(),
            pid: 0,
            tid: 0,
            ts_ps: 0,
            kind: EventKind::Instant,
            args: Vec::new(),
        }
    }

    #[test]
    fn groups_and_ranks_by_total() {
        let events = vec![
            span("kernel:gemm", 10),
            span("link:hbm", 50),
            span("kernel:gemm", 20),
            instant("request"),
        ];
        let a = Attribution::of_spans(&events);
        assert_eq!(a.total_ps(), 80);
        assert_eq!(a.rows().len(), 2);
        assert_eq!(a.rows()[0].cat, "link:hbm");
        assert_eq!(a.rows()[0].count, 1);
        assert_eq!(a.rows()[1].cat, "kernel:gemm");
        assert_eq!(a.rows()[1].total_ps, 30);
        assert_eq!(a.rows()[1].count, 2);
        assert!((a.share(&a.rows()[0]) - 0.625).abs() < 1e-12);
        assert_eq!(a.top_k(1).len(), 1);
        assert_eq!(a.top_k(9).len(), 2);
    }

    #[test]
    fn ties_break_by_category_name() {
        let a = Attribution::of_spans(&[span("b", 5), span("a", 5)]);
        assert_eq!(a.rows()[0].cat, "a");
        assert_eq!(a.rows()[1].cat, "b");
    }

    #[test]
    fn empty_events_attribute_nothing() {
        let a = Attribution::of_spans(&[instant("x")]);
        assert_eq!(a.total_ps(), 0);
        assert!(a.rows().is_empty());
        assert_eq!(a, Attribution::default());
    }
}
