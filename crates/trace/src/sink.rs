//! Event sinks: where a [`Tracer`](crate::tracer::Tracer) puts what it
//! records.

use std::collections::VecDeque;

use crate::event::TraceEvent;

/// Receives recorded events.
///
/// Implementations must be deterministic: recording the same event
/// sequence twice must leave the sink in the same observable state.
pub trait Sink: Send {
    /// Records one event.
    fn record(&mut self, event: TraceEvent);
    /// Removes and returns every retained event, oldest first.
    fn drain(&mut self) -> Vec<TraceEvent>;
    /// Events currently retained.
    fn len(&self) -> usize;
    /// `true` when nothing is retained.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Events discarded so far (bounded sinks only).
    fn dropped(&self) -> u64 {
        0
    }
}

/// The no-op sink: discards everything. A tracer built over it — or the
/// cheaper [`Tracer::off`](crate::tracer::Tracer::off), which skips the
/// sink entirely — retains zero events.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&mut self, _event: TraceEvent) {}

    fn drain(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }

    fn len(&self) -> usize {
        0
    }
}

/// A bounded in-memory ring: keeps the most recent `capacity` events,
/// dropping the oldest (and counting the drops) once full — memory
/// stays bounded no matter how long a saturating serve run emits.
///
/// # Drop semantics
///
/// Drops are **oldest-first and silent at record time**: the
/// `capacity + 1`-th record evicts the oldest retained event, and
/// [`dropped`](Sink::dropped) counts every eviction (a zero-capacity
/// ring counts every record as a drop). Eviction is deterministic —
/// same event sequence, same retained suffix — so a truncated trace is
/// still byte-identical across same-seed reruns. Consumers that need
/// the *whole* run (the Chrome exporter, `lumos_prof`'s critical paths
/// and waterfalls) should check `dropped() == 0` or size the ring
/// generously: a drained tail can start mid-request, with arrival
/// instants and queue spans already evicted while later spans survive.
#[derive(Debug, Default)]
pub struct RingSink {
    capacity: usize,
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingSink {
    /// A ring retaining at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        RingSink {
            capacity,
            buf: VecDeque::new(),
            dropped: 0,
        }
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Sink for RingSink {
    fn record(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent {
            name: format!("e{i}"),
            cat: "test".into(),
            pid: 0,
            tid: 0,
            ts_ps: i,
            kind: EventKind::Instant,
            args: Vec::new(),
        }
    }

    #[test]
    fn null_sink_retains_nothing() {
        let mut s = NullSink;
        s.record(ev(1));
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert!(s.drain().is_empty());
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut s = RingSink::with_capacity(3);
        for i in 0..10 {
            s.record(ev(i));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 7);
        let kept = s.drain();
        assert_eq!(
            kept.iter().map(|e| e.ts_ps).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
        assert!(s.is_empty());
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut s = RingSink::with_capacity(0);
        s.record(ev(1));
        assert_eq!(s.len(), 0);
        assert_eq!(s.dropped(), 1);
    }

    #[test]
    fn ring_drops_start_exactly_at_the_capacity_boundary() {
        let mut s = RingSink::with_capacity(3);
        for i in 0..3 {
            s.record(ev(i));
        }
        // Exactly full: nothing dropped yet.
        assert_eq!((s.len(), s.dropped()), (3, 0));
        // The capacity+1-th record evicts exactly the oldest event.
        s.record(ev(3));
        assert_eq!((s.len(), s.dropped()), (3, 1));
        assert_eq!(
            s.drain().iter().map(|e| e.ts_ps).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        // Draining resets retention but not the drop count.
        assert_eq!((s.len(), s.dropped()), (0, 1));
    }
}
