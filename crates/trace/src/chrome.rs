//! Deterministic Chrome trace-event JSON export.
//!
//! The output loads in `chrome://tracing` and Perfetto. Timestamps are
//! the trace-event format's microseconds, rendered from the virtual
//! clock's integer picoseconds with pure integer math
//! (`ps / 10^6` + a six-digit fraction), so the export is
//! byte-identical across reruns — no float formatting on the clock
//! path, no wall clock, no map iteration.

use crate::event::{ArgValue, EventKind, TraceEvent};

/// Renders `ps` picoseconds as trace-event microseconds with six
/// fractional digits (`1_500_000 ps` → `"1.500000"`).
fn ts_us(ps: u64) -> String {
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

/// Escapes a string for a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an [`ArgValue`] as a JSON value. Non-finite floats render as
/// `null` (JSON has no NaN/inf); finite floats use Rust's deterministic
/// shortest-roundtrip `Display`.
fn arg_json(v: &ArgValue) -> String {
    match v {
        ArgValue::Str(s) => format!("\"{}\"", escape(s)),
        ArgValue::U64(n) => format!("{n}"),
        ArgValue::F64(x) if x.is_finite() => format!("{x}"),
        ArgValue::F64(_) => "null".to_owned(),
    }
}

fn args_json(args: &[(&'static str, ArgValue)]) -> String {
    let fields: Vec<String> = args
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", escape(k), arg_json(v)))
        .collect();
    format!("{{{}}}", fields.join(","))
}

fn event_json(e: &TraceEvent) -> String {
    let name = escape(&e.name);
    let cat = escape(&e.cat);
    match &e.kind {
        EventKind::Span { dur_ps } => format!(
            "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\
             \"ts\":{},\"dur\":{},\"args\":{}}}",
            e.pid,
            e.tid,
            ts_us(e.ts_ps),
            ts_us(*dur_ps),
            args_json(&e.args)
        ),
        EventKind::Instant => format!(
            "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{},\
             \"tid\":{},\"ts\":{},\"args\":{}}}",
            e.pid,
            e.tid,
            ts_us(e.ts_ps),
            args_json(&e.args)
        ),
        EventKind::Counter { value } => {
            let v = if value.is_finite() {
                format!("{value}")
            } else {
                "null".to_owned()
            };
            format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"C\",\"pid\":{},\"ts\":{},\
                 \"args\":{{\"value\":{v}}}}}",
                e.pid,
                ts_us(e.ts_ps)
            )
        }
        EventKind::ProcessName => format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\
             \"args\":{{\"name\":\"{name}\"}}}}",
            e.pid
        ),
        EventKind::ThreadName => format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\
             \"args\":{{\"name\":\"{name}\"}}}}",
            e.pid, e.tid
        ),
    }
}

/// Serializes `events` (in the given order) as a Chrome trace-event
/// JSON document, one event per line.
///
/// Deterministic: the bytes are a pure function of the event list, so a
/// deterministic emitter (same config, same seed) exports byte-identical
/// files across reruns.
///
/// # Examples
///
/// ```
/// use lumos_trace::{export_chrome_trace, Tracer};
///
/// let t = Tracer::ring(16);
/// t.name_process(1, "2.5D SiPh");
/// t.span(1, 0, "kernel:gemm", "qkv", 0, 1_500_000, Vec::new());
/// let json = export_chrome_trace(&t.drain());
/// assert!(json.starts_with("{\"traceEvents\":["));
/// assert!(json.contains("\"dur\":1.500000"));
/// ```
pub fn export_chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str(&event_json(e));
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_integer_math() {
        assert_eq!(ts_us(0), "0.000000");
        assert_eq!(ts_us(999_999), "0.999999");
        assert_eq!(ts_us(1_000_000), "1.000000");
        assert_eq!(ts_us(1_500_000), "1.500000");
        assert_eq!(ts_us(123_456_789_012), "123456.789012");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(arg_json(&ArgValue::F64(f64::NAN)), "null");
        assert_eq!(arg_json(&ArgValue::F64(2.5)), "2.5");
        assert_eq!(arg_json(&ArgValue::F64(2.0)), "2");
    }

    #[test]
    fn export_covers_every_kind() {
        let events = vec![
            TraceEvent {
                name: "SiPh".into(),
                cat: "__metadata".into(),
                pid: 3,
                tid: 0,
                ts_ps: 0,
                kind: EventKind::ProcessName,
                args: Vec::new(),
            },
            TraceEvent {
                name: "slot 0".into(),
                cat: "__metadata".into(),
                pid: 3,
                tid: 1,
                ts_ps: 0,
                kind: EventKind::ThreadName,
                args: Vec::new(),
            },
            TraceEvent {
                name: "prefill".into(),
                cat: "request".into(),
                pid: 3,
                tid: 1,
                ts_ps: 2_000_000,
                kind: EventKind::Span { dur_ps: 500_000 },
                args: vec![("id", ArgValue::U64(4))],
            },
            TraceEvent {
                name: "complete".into(),
                cat: "request".into(),
                pid: 3,
                tid: 1,
                ts_ps: 2_500_000,
                kind: EventKind::Instant,
                args: Vec::new(),
            },
            TraceEvent {
                name: "resident".into(),
                cat: "counter".into(),
                pid: 3,
                tid: 0,
                ts_ps: 2_500_000,
                kind: EventKind::Counter { value: 2.0 },
                args: Vec::new(),
            },
        ];
        let json = export_chrome_trace(&events);
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ts\":2.000000,\"dur\":0.500000"));
        assert!(json.contains("\"id\":4"));
        // Valid JSON shape at the seams.
        assert!(json.starts_with("{\"traceEvents\":[\n"));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ns\"}\n"));
    }

    #[test]
    fn empty_trace_exports_a_valid_document() {
        let json = export_chrome_trace(&[]);
        assert_eq!(json, "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ns\"}\n");
    }

    #[test]
    fn single_event_trace_has_no_trailing_comma() {
        let events = vec![TraceEvent {
            name: "solo".into(),
            cat: "kernel:gemv".into(),
            pid: 1,
            tid: 0,
            ts_ps: 0,
            kind: EventKind::Span { dur_ps: 10 },
            args: Vec::new(),
        }];
        let json = export_chrome_trace(&events);
        // Exactly one event line, comma-free: "...}\n]".
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 1);
        assert!(
            json.contains("}\n],"),
            "single event must not end with a comma"
        );
        assert!(
            !json.contains("},\n]"),
            "no trailing comma before the closing bracket"
        );
    }

    #[test]
    fn ring_overflow_exports_only_the_retained_tail() {
        use crate::tracer::Tracer;
        // Capacity 4, 10 instants: the ring keeps the newest 4 and the
        // export reflects exactly those, oldest first.
        let t = Tracer::ring(4);
        for i in 0..10u64 {
            t.instant(1, 0, "request", &format!("e{i}"), i, Vec::new());
        }
        assert_eq!(t.dropped(), 6);
        let events = t.drain();
        assert_eq!(
            events.iter().map(|e| e.name.as_str()).collect::<Vec<_>>(),
            ["e6", "e7", "e8", "e9"]
        );
        let json = export_chrome_trace(&events);
        assert!(!json.contains("\"e5\""), "dropped events must not export");
        assert!(json.contains("\"e6\"") && json.contains("\"e9\""));
    }

    #[test]
    fn export_is_a_pure_function_of_events() {
        let e = TraceEvent {
            name: "n".into(),
            cat: "c".into(),
            pid: 1,
            tid: 2,
            ts_ps: 3,
            kind: EventKind::Span { dur_ps: 4 },
            args: vec![("x", ArgValue::F64(0.1))],
        };
        let events = vec![e.clone(), e];
        assert_eq!(export_chrome_trace(&events), export_chrome_trace(&events));
    }
}
