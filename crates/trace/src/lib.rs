//! # lumos-trace — deterministic sim-time tracing for LUMOS
//!
//! Every LUMOS result is deterministic: a report is a pure function of
//! its configuration and seed. This crate makes the *path* to those
//! results observable under the same contract — spans, instants, and
//! counters keyed to the **virtual simulation clock** (integer
//! picoseconds, never the wall clock), so a trace of a run is as
//! reproducible as the run's report.
//!
//! * [`event`] — the vocabulary: [`TraceEvent`] spans / instants /
//!   counters / metadata with pid/tid lanes (pid ↦ platform or engine,
//!   tid ↦ residency slot, per-model queue, link family, or pool
//!   worker);
//! * [`sink`] — where events go: the no-op [`NullSink`] and the bounded
//!   drop-oldest [`RingSink`];
//! * [`tracer`] — the cheap-clone [`Tracer`] handle instrumented layers
//!   emit through ([`Tracer::off`] costs one branch per call) and the
//!   plain-data [`TraceConfig`] knob run configurations embed;
//! * [`chrome`] — [`export_chrome_trace`]: Chrome trace-event JSON
//!   (loads in `chrome://tracing` / Perfetto), byte-identical across
//!   reruns;
//! * [`summary`] — [`Attribution`]: span time grouped by category, the
//!   flamegraph-style "where does the nanosecond go" rollup
//!   (`lumos_bench` renders it as an aligned table).
//!
//! Instrumented layers: `lumos_core::Runner` (per-op spans with
//! per-kernel-class and per-link-family attribution),
//! `lumos_serve::sim` (the full request lifecycle: arrival → queue →
//! admit → prefill → decode ticks → completion), and `lumos_dse`
//! (pool-worker spans plus cache hit/miss counters).
//!
//! # Examples
//!
//! ```
//! use lumos_trace::{export_chrome_trace, ArgValue, Attribution, Tracer};
//!
//! let tracer = Tracer::ring(1024);
//! tracer.name_process(3, "2.5D SiPh");
//! tracer.span(3, 0, "kernel:gemm", "qkv", 0, 2_000_000, vec![("bits", ArgValue::U64(1 << 20))]);
//! tracer.span(3, 0, "link:hbm", "qkv", 0, 500_000, Vec::new());
//!
//! let events = tracer.drain();
//! let attribution = Attribution::of_spans(&events);
//! assert_eq!(attribution.rows()[0].cat, "kernel:gemm");
//!
//! let json = export_chrome_trace(&events);
//! assert!(json.contains("\"ph\":\"X\""));
//! // Same events, same bytes — always.
//! assert_eq!(json, export_chrome_trace(&events));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod sink;
pub mod summary;
pub mod tracer;

pub use chrome::export_chrome_trace;
pub use event::{ArgValue, EventKind, TraceEvent};
pub use sink::{NullSink, RingSink, Sink};
pub use summary::{Attribution, AttributionRow};
pub use tracer::{TraceConfig, Tracer, DEFAULT_RING_CAPACITY};

/// Converts a virtual-clock time in **seconds** (the serving
/// simulator's unit) to integer picoseconds, the trace clock.
///
/// Deterministic (one multiply and one round); saturates at zero for
/// negative inputs.
pub fn ps_from_secs(s: f64) -> u64 {
    let ps = (s * 1e12).round();
    if ps.is_finite() && ps > 0.0 {
        ps as u64
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_to_picoseconds() {
        assert_eq!(ps_from_secs(0.0), 0);
        assert_eq!(ps_from_secs(1.0), 1_000_000_000_000);
        assert_eq!(ps_from_secs(1.5e-6), 1_500_000);
        assert_eq!(ps_from_secs(-1.0), 0);
        assert_eq!(ps_from_secs(f64::NAN), 0);
    }
}
