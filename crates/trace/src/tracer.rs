//! The [`Tracer`] handle the instrumented layers emit through, plus the
//! plain-data [`TraceConfig`] knob embedded in run configurations.

use std::fmt;
use std::sync::{Arc, Mutex};

use crate::event::{ArgValue, EventKind, TraceEvent};
use crate::sink::{RingSink, Sink};

/// Default [`RingSink`] retention when a config enables tracing without
/// choosing a bound.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// The tracing knob a run configuration carries (e.g.
/// `ServeConfig::trace` in `lumos_serve`): plain comparable data, not a
/// live handle, so configurations stay `Clone + PartialEq` and
/// fingerprintable. Build the live [`Tracer`] with
/// [`TraceConfig::tracer`].
///
/// Tracing never changes what a simulation computes — reports are
/// bit-identical with tracing on or off — so the knob is excluded from
/// result fingerprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Whether the run records events at all.
    pub enabled: bool,
    /// Retention bound of the in-memory ring (most recent events win).
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

impl TraceConfig {
    /// Tracing disabled (the default everywhere).
    pub fn off() -> Self {
        TraceConfig {
            enabled: false,
            ring_capacity: DEFAULT_RING_CAPACITY,
        }
    }

    /// Tracing enabled into a ring bounded at `ring_capacity` events.
    pub fn ring(ring_capacity: usize) -> Self {
        TraceConfig {
            enabled: true,
            ring_capacity,
        }
    }

    /// Tracing enabled at the default retention bound.
    pub fn enabled() -> Self {
        TraceConfig::ring(DEFAULT_RING_CAPACITY)
    }

    /// Builds the live handle this configuration describes:
    /// [`Tracer::off`] when disabled, a bounded ring otherwise.
    pub fn tracer(&self) -> Tracer {
        if self.enabled {
            Tracer::ring(self.ring_capacity)
        } else {
            Tracer::off()
        }
    }
}

/// A cheap-to-clone handle the instrumented layers emit events through.
///
/// A disabled tracer ([`Tracer::off`], the default) holds no sink at
/// all: every emission method is a single branch and instrumentation
/// sites guard any argument construction behind
/// [`enabled`](Tracer::enabled), so the off cost is near zero.
///
/// Determinism: emission order is the caller's (single-threaded
/// simulation loops emit in event order), timestamps are virtual-clock
/// picoseconds, and nothing here reads the wall clock — so for a
/// deterministic caller the drained event stream is byte-identical
/// across reruns.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<Box<dyn Sink>>>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .field("len", &self.len())
            .finish()
    }
}

impl Tracer {
    /// The disabled tracer: records nothing, costs one branch per call.
    pub fn off() -> Self {
        Tracer { inner: None }
    }

    /// A tracer over a [`RingSink`] bounded at `capacity` events.
    pub fn ring(capacity: usize) -> Self {
        Tracer::with_sink(Box::new(RingSink::with_capacity(capacity)))
    }

    /// A tracer over an arbitrary sink.
    pub fn with_sink(sink: Box<dyn Sink>) -> Self {
        Tracer {
            inner: Some(Arc::new(Mutex::new(sink))),
        }
    }

    /// Whether emissions are recorded. Instrumentation sites should
    /// guard argument construction behind this.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Events currently retained by the sink.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(sink) => sink.lock().expect("tracer sink lock").len(),
            None => 0,
        }
    }

    /// `true` when no event is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events the sink has discarded (ring overflow).
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            Some(sink) => sink.lock().expect("tracer sink lock").dropped(),
            None => 0,
        }
    }

    /// Removes and returns every retained event, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(sink) => sink.lock().expect("tracer sink lock").drain(),
            None => Vec::new(),
        }
    }

    fn record(&self, event: TraceEvent) {
        if let Some(sink) = &self.inner {
            sink.lock().expect("tracer sink lock").record(event);
        }
    }

    /// Emits a closed span `[ts_ps, ts_ps + dur_ps]`.
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &self,
        pid: u32,
        tid: u32,
        cat: &str,
        name: &str,
        ts_ps: u64,
        dur_ps: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if self.inner.is_none() {
            return;
        }
        self.record(TraceEvent {
            name: name.to_owned(),
            cat: cat.to_owned(),
            pid,
            tid,
            ts_ps,
            kind: EventKind::Span { dur_ps },
            args,
        });
    }

    /// Emits a point-in-time mark.
    pub fn instant(
        &self,
        pid: u32,
        tid: u32,
        cat: &str,
        name: &str,
        ts_ps: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if self.inner.is_none() {
            return;
        }
        self.record(TraceEvent {
            name: name.to_owned(),
            cat: cat.to_owned(),
            pid,
            tid,
            ts_ps,
            kind: EventKind::Instant,
            args,
        });
    }

    /// Emits a counter-series sample (`name` is the series).
    pub fn counter(&self, pid: u32, name: &str, ts_ps: u64, value: f64) {
        if self.inner.is_none() {
            return;
        }
        self.record(TraceEvent {
            name: name.to_owned(),
            cat: "counter".to_owned(),
            pid,
            tid: 0,
            ts_ps,
            kind: EventKind::Counter { value },
            args: Vec::new(),
        });
    }

    /// Names process lane `pid` (platform / engine) in the export.
    pub fn name_process(&self, pid: u32, name: &str) {
        if self.inner.is_none() {
            return;
        }
        self.record(TraceEvent {
            name: name.to_owned(),
            cat: "__metadata".to_owned(),
            pid,
            tid: 0,
            ts_ps: 0,
            kind: EventKind::ProcessName,
            args: Vec::new(),
        });
    }

    /// Names thread row `tid` (slot / queue / link / worker) in the
    /// export.
    pub fn name_thread(&self, pid: u32, tid: u32, name: &str) {
        if self.inner.is_none() {
            return;
        }
        self.record(TraceEvent {
            name: name.to_owned(),
            cat: "__metadata".to_owned(),
            pid,
            tid,
            ts_ps: 0,
            kind: EventKind::ThreadName,
            args: Vec::new(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tracer_records_nothing() {
        let t = Tracer::off();
        assert!(!t.enabled());
        t.span(0, 0, "c", "n", 0, 1, Vec::new());
        t.instant(0, 0, "c", "n", 0, Vec::new());
        t.counter(0, "n", 0, 1.0);
        t.name_process(0, "p");
        t.name_thread(0, 0, "t");
        assert!(t.is_empty());
        assert!(t.drain().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_tracer_retains_in_emission_order() {
        let t = Tracer::ring(8);
        assert!(t.enabled());
        t.span(1, 2, "cat", "a", 10, 5, vec![("id", ArgValue::U64(7))]);
        t.instant(1, 2, "cat", "b", 15, Vec::new());
        t.counter(1, "depth", 15, 3.0);
        let events = t.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "a");
        assert_eq!(events[0].dur_ps(), Some(5));
        assert_eq!(events[1].kind, EventKind::Instant);
        assert_eq!(events[2].kind, EventKind::Counter { value: 3.0 });
        assert!(t.is_empty());
    }

    #[test]
    fn clones_share_the_sink() {
        let t = Tracer::ring(8);
        let u = t.clone();
        u.instant(0, 0, "c", "n", 1, Vec::new());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn config_round_trip() {
        assert_eq!(TraceConfig::default(), TraceConfig::off());
        assert!(!TraceConfig::off().tracer().enabled());
        let cfg = TraceConfig::ring(4);
        assert!(cfg.enabled);
        assert_eq!(cfg.ring_capacity, 4);
        let t = cfg.tracer();
        assert!(t.enabled());
        for i in 0..10 {
            t.instant(0, 0, "c", "n", i, Vec::new());
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        assert_eq!(TraceConfig::enabled().ring_capacity, DEFAULT_RING_CAPACITY);
    }
}
