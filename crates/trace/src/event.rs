//! The trace vocabulary: one event on the virtual sim-time axis.
//!
//! Everything is keyed to **virtual simulation time** in integer
//! picoseconds — the same clock `lumos_sim::SimTime` ticks — never to
//! the wall clock, so a trace is a pure function of the run that
//! produced it and reruns are byte-identical.

/// One argument value attached to a [`TraceEvent`].
///
/// Deliberately tiny: strings, integers, and floats cover everything
/// the instrumented layers attach (kernel classes, request ids, batch
/// occupancies), and every variant formats deterministically.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// A string argument (kernel class, model name, …).
    Str(String),
    /// An unsigned integer argument (request id, stage index, bits, …).
    U64(u64),
    /// A float argument (occupancy, energy, …). Formatted with Rust's
    /// shortest-roundtrip `Display`, which is deterministic.
    F64(f64),
}

impl From<&str> for ArgValue {
    fn from(s: &str) -> Self {
        ArgValue::Str(s.to_owned())
    }
}

impl From<String> for ArgValue {
    fn from(s: String) -> Self {
        ArgValue::Str(s)
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

/// What kind of mark an event leaves on the timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A closed interval starting at the event's timestamp — a Chrome
    /// "complete" (`ph: "X"`) event.
    Span {
        /// Duration in picoseconds.
        dur_ps: u64,
    },
    /// A point-in-time mark (`ph: "i"`).
    Instant,
    /// A sampled counter series value (`ph: "C"`); the event's name is
    /// the series name.
    Counter {
        /// The series value at the event's timestamp.
        value: f64,
    },
    /// Process-name metadata (`ph: "M"`, `process_name`): labels a
    /// `pid` lane — LUMOS maps platforms (and the DSE engine) to pids.
    ProcessName,
    /// Thread-name metadata (`ph: "M"`, `thread_name`): labels a `tid`
    /// row — LUMOS maps residency slots, per-model queues, and pool
    /// workers to tids.
    ThreadName,
}

/// One trace event on the virtual clock.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event (or counter-series, or metadata) name.
    pub name: String,
    /// Category — the attribution dimension
    /// ([`Attribution`](crate::summary::Attribution) groups span time
    /// by category: `kernel:conv3x3`, `link:hbm`, `decode-tick`, …).
    pub cat: String,
    /// Process lane: the platform (or engine) the event belongs to.
    pub pid: u32,
    /// Thread row within the process lane: residency slot, queue, link
    /// family, or pool worker.
    pub tid: u32,
    /// Timestamp on the virtual clock, picoseconds.
    pub ts_ps: u64,
    /// Span, instant, counter, or metadata.
    pub kind: EventKind,
    /// Attached arguments, in emission order.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    /// The span duration, when this event is a span.
    pub fn dur_ps(&self) -> Option<u64> {
        match self.kind {
            EventKind::Span { dur_ps } => Some(dur_ps),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_conversions() {
        assert_eq!(ArgValue::from("x"), ArgValue::Str("x".into()));
        assert_eq!(ArgValue::from(3u64), ArgValue::U64(3));
        assert_eq!(ArgValue::from(1.5f64), ArgValue::F64(1.5));
    }

    #[test]
    fn span_duration_accessor() {
        let mut e = TraceEvent {
            name: "op".into(),
            cat: "test".into(),
            pid: 1,
            tid: 0,
            ts_ps: 10,
            kind: EventKind::Span { dur_ps: 7 },
            args: Vec::new(),
        };
        assert_eq!(e.dur_ps(), Some(7));
        e.kind = EventKind::Instant;
        assert_eq!(e.dur_ps(), None);
    }
}
