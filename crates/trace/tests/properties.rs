//! Property tests for the tracing core: ring retention bounds,
//! export determinism and JSON well-formedness under adversarial
//! strings, and attribution accounting invariants.

use lumos_trace::{
    export_chrome_trace, ArgValue, Attribution, EventKind, RingSink, Sink, TraceEvent, Tracer,
};
use proptest::prelude::*;
use proptest::{collection, sample, strategy::Strategy};

/// Names and categories that stress the JSON escaper: quotes,
/// backslashes, control characters, multibyte text.
fn arb_text() -> impl Strategy<Value = String> {
    sample::select(vec![
        String::new(),
        "kernel:gemm".to_owned(),
        "a\"quoted\"name".to_owned(),
        "back\\slash".to_owned(),
        "new\nline\tand\rtab".to_owned(),
        "\u{1}control\u{1f}".to_owned(),
        "λ-link φ".to_owned(),
    ])
}

fn arb_kind() -> impl Strategy<Value = EventKind> {
    let value = sample::select(vec![
        0.0,
        -2.5,
        1e300,
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
    ]);
    (0u32..5, 0u64..10_000_000, value).prop_map(|(tag, dur_ps, value)| match tag {
        0 => EventKind::Span { dur_ps },
        1 => EventKind::Instant,
        2 => EventKind::Counter { value },
        3 => EventKind::ProcessName,
        _ => EventKind::ThreadName,
    })
}

fn arb_arg() -> impl Strategy<Value = ArgValue> {
    let float = sample::select(vec![0.25, -1.0, f64::NAN, f64::INFINITY]);
    (0u32..3, arb_text(), 0u64..1_000, float).prop_map(|(tag, s, n, x)| match tag {
        0 => ArgValue::Str(s),
        1 => ArgValue::U64(n),
        _ => ArgValue::F64(x),
    })
}

fn arb_event() -> impl Strategy<Value = TraceEvent> {
    (
        (arb_text(), arb_text()),
        0u32..4,
        0u32..8,
        0u64..1_000_000_000,
        arb_kind(),
        collection::vec(arb_arg(), 0..3),
    )
        .prop_map(|((name, cat), pid, tid, ts_ps, kind, args)| TraceEvent {
            name,
            cat,
            pid,
            tid,
            ts_ps,
            kind,
            // Arg keys are `&'static str` by design; the values carry
            // the adversarial content.
            args: args.into_iter().map(|v| ("k", v)).collect(),
        })
}

/// Minimal JSON validity check: balanced braces/brackets outside
/// string literals, correctly-formed escapes, no raw control
/// characters inside strings.
fn assert_well_formed_json(s: &str) {
    let mut depth = 0i64;
    let mut in_str = false;
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    let e = chars.next().expect("escape must not end the document");
                    if e == 'u' {
                        for _ in 0..4 {
                            let h = chars.next().expect("four hex digits");
                            assert!(h.is_ascii_hexdigit(), "bad unicode escape");
                        }
                    } else {
                        assert!("\"\\/bfnrt".contains(e), "bad escape '\\{e}'");
                    }
                }
                '"' => in_str = false,
                c => assert!((c as u32) >= 0x20, "raw control char in string"),
            }
        } else {
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced close");
        }
    }
    assert!(!in_str, "unterminated string");
    assert_eq!(depth, 0, "unbalanced braces");
}

proptest! {
    /// A ring of capacity `cap` retains exactly the most recent
    /// `min(n, cap)` events and accounts for every drop.
    #[test]
    fn ring_retains_newest_and_counts_drops(
        cap in 1usize..64,
        n in 0usize..200,
    ) {
        let mut ring = RingSink::with_capacity(cap);
        for i in 0..n {
            ring.record(TraceEvent {
                name: String::new(),
                cat: String::new(),
                pid: 0,
                tid: 0,
                ts_ps: i as u64,
                kind: EventKind::Instant,
                args: Vec::new(),
            });
        }
        prop_assert_eq!(ring.len(), n.min(cap));
        prop_assert_eq!(ring.dropped(), n.saturating_sub(cap) as u64);
        let kept = ring.drain();
        let first = n.saturating_sub(cap) as u64;
        prop_assert!(kept.iter().zip(first..).all(|(e, i)| e.ts_ps == i));
        prop_assert_eq!(ring.len(), 0);
    }

    /// Export is a pure function of the event list, and adversarial
    /// names/categories/args always yield well-formed JSON, one event
    /// per line.
    #[test]
    fn export_is_deterministic_and_well_formed(
        events in collection::vec(arb_event(), 0..24),
    ) {
        let a = export_chrome_trace(&events);
        let b = export_chrome_trace(&events);
        prop_assert_eq!(&a, &b);
        assert_well_formed_json(&a);
        prop_assert_eq!(a.lines().count(), events.len() + 2);
    }

    /// Attribution conserves span time: bucket totals and counts sum
    /// to the whole, rows are ranked by total descending, and shares
    /// sum to 1 whenever any time was attributed.
    #[test]
    fn attribution_conserves_span_time(
        events in collection::vec(arb_event(), 0..48),
    ) {
        let attr = Attribution::of_spans(&events);
        let span_total: u64 = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Span { dur_ps } => Some(dur_ps),
                _ => None,
            })
            .sum();
        let span_count = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Span { .. }))
            .count() as u64;
        prop_assert_eq!(attr.total_ps(), span_total);
        prop_assert_eq!(attr.rows().iter().map(|r| r.total_ps).sum::<u64>(), span_total);
        prop_assert_eq!(attr.rows().iter().map(|r| r.count).sum::<u64>(), span_count);
        prop_assert!(attr.rows().windows(2).all(|w| w[0].total_ps >= w[1].total_ps));
        if span_total > 0 {
            let share_sum: f64 = attr.rows().iter().map(|r| attr.share(r)).sum();
            prop_assert!((share_sum - 1.0).abs() < 1e-9);
        }
    }

    /// The disabled tracer is inert under any emission sequence.
    #[test]
    fn off_tracer_is_inert(events in collection::vec(arb_event(), 0..16)) {
        let t = Tracer::off();
        for e in &events {
            match e.kind {
                EventKind::Span { dur_ps } => {
                    t.span(e.pid, e.tid, &e.cat, &e.name, e.ts_ps, dur_ps, Vec::new())
                }
                EventKind::Instant => t.instant(e.pid, e.tid, &e.cat, &e.name, e.ts_ps, Vec::new()),
                EventKind::Counter { value } => t.counter(e.pid, &e.name, e.ts_ps, value),
                EventKind::ProcessName => t.name_process(e.pid, &e.name),
                EventKind::ThreadName => t.name_thread(e.pid, e.tid, &e.name),
            }
        }
        prop_assert!(!t.enabled());
        prop_assert!(t.drain().is_empty());
        prop_assert_eq!(t.dropped(), 0);
    }
}
