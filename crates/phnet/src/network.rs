//! The reconfigurable photonic interposer simulator.
//!
//! Ties together the layout (loss budgets → laser power), the epoch
//! controller (active gateways/wavelengths), and FIFO bandwidth servers
//! (transfer serialization) into the network object the platform
//! simulator drives. Implements the paper's two protocols:
//!
//! * **SWMR reads** — the memory MRG modulates once and every addressed
//!   reader receives the stream (true broadcast, no replication);
//! * **SWSR writes** — each compute writer gateway owns a dedicated
//!   waveguide into a memory filter row.

use lumos_photonics::laser::{Laser, LaserPlacement};
use lumos_photonics::link::{solve_link, LinkDesign, LinkError};
use lumos_photonics::modulator::Modulator;
use lumos_photonics::photodetector::Photodetector;
use lumos_photonics::wdm::ChannelPlan;
use lumos_sim::{ServerPool, SimTime, TimeWeighted};

use crate::config::PhnetConfig;
use crate::controller::{ActiveSet, EpochController, ReconfigCost};
use crate::layout::InterposerLayout;

/// Outcome of one interposer transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhTransfer {
    /// When serialization started at the writer gateway.
    pub start: SimTime,
    /// When the last bit was delivered (including conversions + flight).
    pub finish: SimTime,
}

/// Final report of a simulation run over the interposer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhnetReport {
    /// Total network energy: laser/tuning/static integrated over time +
    /// per-bit EO/OE + PCM reconfiguration writes, joules.
    pub energy_j: f64,
    /// Time-averaged network power over the run, watts.
    pub avg_power_w: f64,
    /// Bits moved (reads + writes).
    pub bits_moved: u64,
    /// Reconfigurations applied.
    pub reconfigs: usize,
    /// Total PCM write stall time, nanoseconds.
    pub reconfig_stall_ns: f64,
}

/// The photonic interposer network.
///
/// # Examples
///
/// ```
/// use lumos_phnet::{config::PhnetConfig, network::PhotonicInterposer};
/// use lumos_sim::SimTime;
///
/// let mut net = PhotonicInterposer::new(PhnetConfig::paper_table1())?;
/// let t = net.read_unicast(SimTime::ZERO, 0, 1 << 20);
/// assert!(t.finish > t.start);
/// let report = net.finalize(t.finish);
/// assert!(report.avg_power_w > 0.0);
/// # Ok::<(), lumos_photonics::link::LinkError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PhotonicInterposer {
    cfg: PhnetConfig,
    layout: InterposerLayout,
    swmr_design: LinkDesign,
    swsr_design: LinkDesign,
    mem_tx: ServerPool,
    chiplet_tx: Vec<ServerPool>,
    controller: EpochController,
    /// Instantaneous laser + tuning + gateway-static power, watts.
    idle_power: TimeWeighted,
    eo_oe_j_per_bit: f64,
    eo_oe_accum: f64,
    bits_read: u64,
    bits_written: u64,
    reconfig_energy_j: f64,
    reconfig_stall_ns: f64,
    conversion: SimTime,
    flight: SimTime,
}

impl PhotonicInterposer {
    /// Builds the interposer, solving both link budgets up front.
    ///
    /// # Errors
    ///
    /// Returns a [`LinkError`] when the Table-1-style design point is not
    /// optically feasible (crosstalk, detector bandwidth, or laser power
    /// ceiling).
    pub fn new(cfg: PhnetConfig) -> Result<Self, LinkError> {
        cfg.validate();
        let layout = InterposerLayout::from_config(&cfg);
        let plan = ChannelPlan::dense(cfg.wavelengths);
        let modulator = Modulator::typical(cfg.modulation);
        let detector = Photodetector::typical();
        let laser = Laser::new(LaserPlacement::OffChip, cfg.wavelengths);

        let swmr_design = solve_link(
            &layout.swmr_budget,
            &plan,
            cfg.rate_gbps,
            &modulator,
            &detector,
            &laser,
            cfg.ring_q,
            cfg.max_laser_dbm,
        )?;
        let swsr_design = solve_link(
            &layout.swsr_budget,
            &plan,
            cfg.rate_gbps,
            &modulator,
            &detector,
            &laser,
            cfg.ring_q,
            cfg.max_laser_dbm,
        )?;

        let gateway_gbps = cfg.gateway_rate_gbps();
        let mem_tx = ServerPool::new(cfg.memory_tx_gateways, gateway_gbps);
        let chiplet_tx =
            vec![ServerPool::new(cfg.gateways_per_chiplet, gateway_gbps); cfg.compute_chiplets];
        let controller = EpochController::new(
            cfg.policy,
            cfg.compute_chiplets,
            cfg.gateways_per_chiplet,
            cfg.memory_tx_gateways,
            cfg.wavelengths,
        );

        // Per-bit electronic cost of one gateway-to-gateway crossing:
        // modulator drive + receiver + SerDes/datapath on both sides.
        let eo_oe_j_per_bit = modulator.energy.as_joules()
            + detector.receiver_energy.as_joules()
            + 2.0 * cfg.serdes_fj_per_bit * 1e-15;

        let conversion = SimTime::from_ns(2 * cfg.conversion_latency_ns);
        let flight = SimTime::from_ps((layout.flight_ns * 1e3).round() as u64);

        let mut net = PhotonicInterposer {
            cfg,
            layout,
            swmr_design,
            swsr_design,
            mem_tx,
            chiplet_tx,
            controller,
            idle_power: TimeWeighted::new(SimTime::ZERO, 0.0),
            eo_oe_j_per_bit,
            eo_oe_accum: 0.0,
            bits_read: 0,
            bits_written: 0,
            reconfig_energy_j: 0.0,
            reconfig_stall_ns: 0.0,
            conversion,
            flight,
        };
        let boot = net.controller.current().clone();
        let p = net.static_power_of(&boot);
        net.idle_power = TimeWeighted::new(SimTime::ZERO, p);
        Ok(net)
    }

    /// The configuration in force.
    pub fn config(&self) -> &PhnetConfig {
        &self.cfg
    }

    /// The derived layout (loss budgets, flight time).
    pub fn layout(&self) -> &InterposerLayout {
        &self.layout
    }

    /// Solved SWMR link design (per broadcast lane).
    pub fn swmr_design(&self) -> &LinkDesign {
        &self.swmr_design
    }

    /// Solved SWSR link design (per writer gateway).
    pub fn swsr_design(&self) -> &LinkDesign {
        &self.swsr_design
    }

    /// The controller's currently active resource set.
    pub fn active_set(&self) -> &ActiveSet {
        self.controller.current()
    }

    /// Instantaneous idle (laser + tuning + gateway static) power of an
    /// active set, in watts.
    ///
    /// * Lasers: one SWMR tree per active memory gateway, one SWSR feed
    ///   per active compute writer gateway; PROWAVES-style wavelength
    ///   scaling dims both proportionally.
    /// * Ring tuning: only the MRG rows of active gateways are locked.
    /// * Gateway digital static power per active gateway (+ memory side).
    pub fn static_power_of(&self, set: &ActiveSet) -> f64 {
        let lambda_frac = set.wavelengths as f64 / self.cfg.wavelengths as f64;
        let active_cgw = set.total_compute_gateways() as f64;
        let laser = self.swmr_design.laser_electrical_w * set.memory_gateways as f64
            + self.swsr_design.laser_electrical_w * active_cgw;
        let laser = laser * lambda_frac;

        let rings_per_gateway = 2.0 * self.cfg.wavelengths as f64; // mod + filter rows
        let mem_rings = (set.memory_gateways as f64 + active_cgw) * self.cfg.wavelengths as f64;
        let active_rings = active_cgw * rings_per_gateway + mem_rings;
        let tuning = active_rings * self.cfg.ring_lock_mw * 1e-3;

        let digital = (active_cgw + set.memory_gateways as f64) * self.cfg.gateway_static_mw * 1e-3;
        laser + tuning + digital
    }

    /// Re-plans the active set from per-chiplet demand (bits/s each
    /// compute chiplet needs to move this epoch/layer). Returns the stall
    /// the caller must absorb before issuing transfers (PCM write
    /// latency; zero when nothing changed).
    pub fn reconfigure(&mut self, at: SimTime, demand_bps: &[f64]) -> SimTime {
        let gateway_gbps = self.cfg.gateway_rate_gbps();
        let (set, cost) = self.controller.plan_epoch(demand_bps, gateway_gbps);
        self.apply_set(at, &set, &cost)
    }

    fn apply_set(&mut self, at: SimTime, set: &ActiveSet, cost: &ReconfigCost) -> SimTime {
        let lambda_rate = set.wavelengths as f64 * self.cfg.rate_gbps;
        self.mem_tx.set_active(set.memory_gateways);
        self.mem_tx.set_rate_gbps(lambda_rate);
        for (pool, &g) in self.chiplet_tx.iter_mut().zip(&set.gateways_per_chiplet) {
            pool.set_active(g);
            pool.set_rate_gbps(lambda_rate);
        }
        self.reconfig_energy_j += cost.energy_j;
        self.reconfig_stall_ns += cost.latency_ns;
        let stall = SimTime::from_ps((cost.latency_ns * 1e3).round() as u64);
        let when = at + stall;
        let p = self.static_power_of(set);
        self.idle_power.set(when, p);
        stall
    }

    /// Per-transfer latency overhead: E-O + O-E conversion and photon
    /// flight.
    fn overhead(&self) -> SimTime {
        self.conversion + self.flight
    }

    /// Streams `bits` from memory to **one** chiplet, striped across the
    /// active broadcast lanes (each chiplet has a reader on every lane).
    pub fn read_unicast(&mut self, at: SimTime, chiplet: usize, bits: u64) -> PhTransfer {
        assert!(chiplet < self.cfg.compute_chiplets, "chiplet out of range");
        if bits == 0 {
            return PhTransfer {
                start: at,
                finish: at,
            };
        }
        let grant = self.mem_tx.serve_striped(at, bits);
        self.account_bits_read(bits);
        PhTransfer {
            start: grant.start,
            finish: grant.finish + self.overhead(),
        }
    }

    /// Broadcasts `bits` from memory to every compute chiplet at once
    /// (SWMR): one serialization on one lane serves all readers — the
    /// photonic advantage over electrical replication.
    pub fn read_broadcast(&mut self, at: SimTime, bits: u64) -> PhTransfer {
        if bits == 0 {
            return PhTransfer {
                start: at,
                finish: at,
            };
        }
        let grant = self.mem_tx.serve(at, bits);
        // Every chiplet's receiver burns O-E energy on the same stream.
        self.bits_read += bits;
        self.account_eo_oe(bits, self.cfg.compute_chiplets as u64);
        PhTransfer {
            start: grant.start,
            finish: grant.finish + self.overhead(),
        }
    }

    /// Streams `bits` from a compute chiplet back to memory (SWSR),
    /// striped over the chiplet's active writer gateways.
    ///
    /// # Panics
    ///
    /// Panics if `chiplet` is out of range.
    pub fn write(&mut self, at: SimTime, chiplet: usize, bits: u64) -> PhTransfer {
        assert!(chiplet < self.cfg.compute_chiplets, "chiplet out of range");
        if bits == 0 {
            return PhTransfer {
                start: at,
                finish: at,
            };
        }
        let grant = self.chiplet_tx[chiplet].serve_striped(at, bits);
        self.bits_written += bits;
        self.account_eo_oe(bits, 1);
        PhTransfer {
            start: grant.start,
            finish: grant.finish + self.overhead(),
        }
    }

    /// Permanently caps the usable gateways of `chiplet` (failure
    /// injection: ReSiPI reroutes around a dead gateway by never
    /// activating it again).
    ///
    /// # Panics
    ///
    /// Panics if `chiplet` is out of range.
    pub fn fail_gateways(&mut self, chiplet: usize, surviving: usize) {
        assert!(chiplet < self.cfg.compute_chiplets, "chiplet out of range");
        self.chiplet_tx[chiplet].set_active(surviving.max(1));
    }

    fn account_bits_read(&mut self, bits: u64) {
        self.bits_read += bits;
        self.account_eo_oe(bits, 1);
    }

    fn account_eo_oe(&mut self, bits: u64, receivers: u64) {
        // Modulation happens once; reception on `receivers` gateways.
        let tx = self.eo_oe_j_per_bit * bits as f64;
        let rx_extra = (receivers.saturating_sub(1)) as f64
            * Photodetector::typical().receiver_energy.as_joules()
            * bits as f64;
        self.eo_oe_accum += tx + rx_extra;
    }

    /// Earliest time the memory broadcast lanes are free.
    pub fn mem_tx_available(&self) -> SimTime {
        self.mem_tx.available_at()
    }

    /// Closes the books at `end` and returns the run report.
    pub fn finalize(&mut self, end: SimTime) -> PhnetReport {
        let idle_j = self.idle_power.integral_value_seconds(end);
        let energy = idle_j + self.eo_oe_accum + self.reconfig_energy_j;
        let secs = end.as_secs_f64();
        PhnetReport {
            energy_j: energy,
            avg_power_w: if secs > 0.0 { energy / secs } else { 0.0 },
            bits_moved: self.bits_read + self.bits_written,
            reconfigs: self.controller.reconfig_count(),
            reconfig_stall_ns: self.reconfig_stall_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ReconfigPolicy;

    fn net() -> PhotonicInterposer {
        PhotonicInterposer::new(PhnetConfig::paper_table1()).expect("Table 1 point is feasible")
    }

    #[test]
    fn table1_design_is_feasible() {
        let n = net();
        assert!(n.swmr_design().laser_electrical_w > 0.0);
        assert!(n.swsr_design().laser_electrical_w < n.swmr_design().laser_electrical_w);
    }

    #[test]
    fn broadcast_is_single_serialization() {
        let mut n = net();
        let bits = 768_000_000; // 1 ms at one 768 Gb/s lane
        let b = n.read_broadcast(SimTime::ZERO, bits);
        let serial = b.finish.saturating_sub(b.start).as_ms_f64();
        assert!(
            (serial - 1.0).abs() < 0.01,
            "broadcast serialized {serial} ms"
        );
    }

    #[test]
    fn unicast_stripes_across_lanes() {
        let mut n = net();
        let bits = 768_000_000;
        let t = n.read_unicast(SimTime::ZERO, 0, bits);
        // 4 lanes active: ~0.25 ms.
        let ms = t.finish.saturating_sub(t.start).as_ms_f64();
        assert!(ms < 0.3, "unicast should stripe: {ms} ms");
    }

    #[test]
    fn writes_use_chiplet_gateways() {
        let mut n = net();
        let bits = 768_000_000;
        let a = n.write(SimTime::ZERO, 0, bits);
        let b = n.write(SimTime::ZERO, 1, bits);
        // Different chiplets write in parallel on their own waveguides.
        assert_eq!(a.start, b.start);
        let c = n.write(SimTime::ZERO, 0, bits);
        assert!(c.start > a.start, "same chiplet must queue");
    }

    #[test]
    fn reconfigure_scales_power_down_when_idle() {
        let mut n = net();
        let full = n.static_power_of(n.active_set());
        let demand = vec![0.0; 8];
        let stall = n.reconfigure(SimTime::from_us(10), &demand);
        assert!(stall > SimTime::ZERO, "scaling down rewrites PCMCs");
        let low = n.static_power_of(n.active_set());
        assert!(
            low < full / 2.0,
            "idle power should collapse: {low} vs {full}"
        );
    }

    #[test]
    fn reduced_gateways_reduce_write_throughput() {
        let mut n = net();
        let _ = n.reconfigure(SimTime::ZERO, &[0.0; 8]);
        let bits = 768_000_000;
        let t = n.write(SimTime::from_us(1), 0, bits);
        // One gateway instead of four: ~1 ms.
        let ms = t.finish.saturating_sub(t.start).as_ms_f64();
        assert!(ms > 0.9, "throughput should drop: {ms} ms");
    }

    #[test]
    fn static_full_never_scales() {
        let mut cfg = PhnetConfig::paper_table1();
        cfg.policy = ReconfigPolicy::StaticFull;
        let mut n =
            PhotonicInterposer::new(cfg).expect("Table 1 interposer closes its link budget");
        let before = n.static_power_of(n.active_set());
        let _ = n.reconfigure(SimTime::from_us(1), &[0.0; 8]);
        let after = n.static_power_of(n.active_set());
        assert_eq!(before, after);
    }

    #[test]
    fn prowaves_scales_wavelengths_and_rate() {
        let mut cfg = PhnetConfig::paper_table1();
        cfg.policy = ReconfigPolicy::ProwavesWavelengths;
        let mut n =
            PhotonicInterposer::new(cfg).expect("Table 1 interposer closes its link budget");
        let stall = n.reconfigure(SimTime::from_us(1), &[1e9; 8]); // tiny demand
        assert_eq!(stall, SimTime::ZERO, "wavelength gating has no PCM writes");
        assert!(n.active_set().wavelengths < 64);
        let bits = 768_000_000;
        let t = n.read_broadcast(SimTime::from_us(2), bits);
        let ms = t.finish.saturating_sub(t.start).as_ms_f64();
        assert!(ms > 2.0, "reduced wavelengths must reduce rate: {ms}");
    }

    #[test]
    fn energy_report_accumulates() {
        let mut n = net();
        let t = n.read_broadcast(SimTime::ZERO, 1 << 24);
        let report = n.finalize(t.finish + SimTime::from_us(10));
        assert!(report.energy_j > 0.0);
        assert!(report.avg_power_w > 0.0);
        assert_eq!(report.bits_moved, 1 << 24);
    }

    #[test]
    fn failed_gateways_cap_throughput() {
        let mut n = net();
        n.fail_gateways(2, 1);
        let bits = 768_000_000;
        let t = n.write(SimTime::ZERO, 2, bits);
        let ms = t.finish.saturating_sub(t.start).as_ms_f64();
        assert!(ms > 0.9, "failed gateways must throttle: {ms}");
    }

    #[test]
    fn infeasible_config_is_an_error() {
        let mut cfg = PhnetConfig::paper_table1();
        cfg.max_laser_dbm = -20.0; // absurd ceiling
        assert!(PhotonicInterposer::new(cfg).is_err());
    }

    #[test]
    fn zero_bit_transfers_are_noops() {
        let mut n = net();
        let t = n.read_broadcast(SimTime::from_ns(5), 0);
        assert_eq!(t.finish, SimTime::from_ns(5));
        let t = n.write(SimTime::from_ns(5), 0, 0);
        assert_eq!(t.finish, SimTime::from_ns(5));
    }
}
