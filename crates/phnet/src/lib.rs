//! # lumos-phnet — reconfigurable silicon-photonic interposer network
//!
//! The ReSiPI-style interposer of the paper's 2.5D platform (§IV–V):
//!
//! * [`config`] — the Table 1 design point (64 λ × 12 Gb/s, 2 GHz
//!   gateways, 8 compute chiplets × 4 gateways)
//! * [`layout`] — physical waveguide layout → worst-case loss budgets for
//!   the SWMR broadcast and SWSR return paths (Fig. 6)
//! * [`controller`] — epoch-based reconfiguration: ReSiPI gateway
//!   activation via PCM couplers, PROWAVES wavelength scaling, static
//!   baselines
//! * [`network`] — the transfer-granularity interposer simulator with
//!   laser/tuning/EO-OE/reconfiguration energy accounting
//!
//! # Examples
//!
//! ```
//! use lumos_phnet::prelude::*;
//! use lumos_sim::SimTime;
//!
//! let mut net = PhotonicInterposer::new(PhnetConfig::paper_table1())?;
//!
//! // Broadcast 1 Mb of activations to all chiplets (SWMR), then write
//! // results back from chiplet 3 (SWSR).
//! let rd = net.read_broadcast(SimTime::ZERO, 1 << 20);
//! let wr = net.write(rd.finish, 3, 1 << 18);
//!
//! let report = net.finalize(wr.finish);
//! println!("network consumed {:.3} mJ", report.energy_j * 1e3);
//! # Ok::<(), lumos_photonics::link::LinkError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod controller;
pub mod layout;
pub mod network;

pub use config::PhnetConfig;
pub use controller::{ActiveSet, EpochController, ReconfigCost, ReconfigPolicy};
pub use layout::InterposerLayout;
pub use network::{PhTransfer, PhnetReport, PhotonicInterposer};

/// Commonly used types, one `use` away.
pub mod prelude {
    pub use crate::config::PhnetConfig;
    pub use crate::controller::{ActiveSet, EpochController, ReconfigPolicy};
    pub use crate::layout::InterposerLayout;
    pub use crate::network::{PhTransfer, PhnetReport, PhotonicInterposer};
}
