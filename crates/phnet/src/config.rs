//! Photonic interposer configuration.

use lumos_photonics::modulator::ModulationFormat;

use crate::controller::ReconfigPolicy;

/// Static configuration of the silicon-photonic interposer network
/// (paper §V, Figs. 3/5/6 and Table 1).
///
/// # Examples
///
/// ```
/// use lumos_phnet::config::PhnetConfig;
///
/// let cfg = PhnetConfig::paper_table1();
/// assert_eq!(cfg.wavelengths, 64);
/// assert_eq!(cfg.rate_gbps, 12.0);
/// assert_eq!(cfg.gateway_rate_gbps(), 64.0 * 12.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PhnetConfig {
    /// Number of compute chiplets on the interposer.
    pub compute_chiplets: usize,
    /// Writer/reader gateway pairs per compute chiplet (Table 1 implies 4:
    /// MACs-per-chiplet / MACs-per-gateway = 4 for every chiplet class).
    pub gateways_per_chiplet: usize,
    /// Broadcast (SWMR) modulator rows on the memory chiplet's MRG. The
    /// paper's Fig. 6 example shows one row for a five-chiplet system; we
    /// scale it so each gateway *lane* has its own broadcast tree.
    pub memory_tx_gateways: usize,
    /// WDM wavelengths per gateway (Table 1: 64).
    pub wavelengths: usize,
    /// Optical data rate per wavelength in Gb/s (Table 1: 12).
    pub rate_gbps: f64,
    /// Gateway digital frequency in GHz (Table 1: 2).
    pub gateway_freq_ghz: f64,
    /// One-way electronic↔photonic conversion + buffering latency per
    /// gateway crossing, nanoseconds.
    pub conversion_latency_ns: u64,
    /// Reconfiguration policy of the controller.
    pub policy: ReconfigPolicy,
    /// Traffic-monitoring epoch length in microseconds (ReSiPI monitors
    /// inter-chiplet traffic "in time epochs").
    pub epoch_us: u64,
    /// Centre-to-centre chiplet pitch on the interposer, millimetres.
    pub chiplet_pitch_mm: f64,
    /// Line modulation format (the paper's interposer uses OOK).
    pub modulation: ModulationFormat,
    /// Loaded Q of the MRG filter rings.
    pub ring_q: u32,
    /// Per-wavelength laser facet power ceiling, dBm (nonlinearity limit).
    pub max_laser_dbm: f64,
    /// SerDes + gateway digital datapath energy per bit, femtojoules.
    pub serdes_fj_per_bit: f64,
    /// Static digital power per active gateway, milliwatts.
    pub gateway_static_mw: f64,
    /// Per-ring thermal locking power, milliwatts (fabrication-variation
    /// compensation, averaged).
    pub ring_lock_mw: f64,
}

impl PhnetConfig {
    /// The paper's Table 1 design point.
    pub fn paper_table1() -> Self {
        PhnetConfig {
            compute_chiplets: 8,
            gateways_per_chiplet: 4,
            memory_tx_gateways: 4,
            wavelengths: 64,
            rate_gbps: 12.0,
            gateway_freq_ghz: 2.0,
            conversion_latency_ns: 8,
            policy: ReconfigPolicy::ResipiGateways,
            epoch_us: 5,
            chiplet_pitch_mm: 8.0,
            modulation: ModulationFormat::Ook,
            ring_q: 12_000,
            max_laser_dbm: 20.0,
            serdes_fj_per_bit: 600.0,
            gateway_static_mw: 200.0,
            ring_lock_mw: 2.0,
        }
    }

    /// Aggregate data rate of one gateway in Gb/s.
    pub fn gateway_rate_gbps(&self) -> f64 {
        self.wavelengths as f64 * self.rate_gbps
    }

    /// Total writer gateways across all compute chiplets.
    pub fn total_compute_gateways(&self) -> usize {
        self.compute_chiplets * self.gateways_per_chiplet
    }

    /// Total microring count across all MRGs (modulators + filters), used
    /// for tuning-power accounting:
    ///
    /// * memory MRG: `memory_tx_gateways` modulator rows + one filter row
    ///   per compute writer gateway (Fig. 6),
    /// * each compute gateway: one modulator row + one filter row.
    pub fn total_rings(&self) -> usize {
        let mem = (self.memory_tx_gateways + self.total_compute_gateways()) * self.wavelengths;
        let compute = self.total_compute_gateways() * 2 * self.wavelengths;
        mem + compute
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on a configuration no hardware could implement (zero
    /// counts, non-positive rates).
    pub fn validate(&self) {
        assert!(
            self.compute_chiplets > 0,
            "need at least one compute chiplet"
        );
        assert!(self.gateways_per_chiplet > 0, "need at least one gateway");
        assert!(
            self.memory_tx_gateways > 0,
            "need at least one memory gateway"
        );
        assert!(self.wavelengths > 0, "need at least one wavelength");
        assert!(
            self.rate_gbps > 0.0 && self.rate_gbps.is_finite(),
            "rate must be positive"
        );
        assert!(self.epoch_us > 0, "epoch must be positive");
        assert!(
            self.chiplet_pitch_mm > 0.0 && self.chiplet_pitch_mm.is_finite(),
            "pitch must be positive"
        );
    }
}

impl Default for PhnetConfig {
    fn default() -> Self {
        PhnetConfig::paper_table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_point() {
        let c = PhnetConfig::paper_table1();
        c.validate();
        assert_eq!(c.compute_chiplets, 8);
        assert_eq!(c.total_compute_gateways(), 32);
        assert_eq!(c.gateway_rate_gbps(), 768.0);
    }

    #[test]
    fn ring_census() {
        let c = PhnetConfig::paper_table1();
        // memory: (4 + 32) rows × 64 rings; compute: 32 gateways × 2 × 64.
        assert_eq!(c.total_rings(), 36 * 64 + 64 * 64);
    }

    #[test]
    #[should_panic(expected = "at least one wavelength")]
    fn zero_wavelengths_rejected() {
        let mut c = PhnetConfig::paper_table1();
        c.wavelengths = 0;
        c.validate();
    }
}
