//! Physical waveguide layout of the interposer and its link budgets.
//!
//! Fig. 6 of the paper: the memory chiplet's MRG broadcasts on SWMR
//! waveguides that snake past every compute chiplet's reader gateways,
//! while each compute writer gateway owns a dedicated SWSR waveguide back
//! to a filter row on the memory MRG. This module turns chiplet geometry
//! into worst-case optical loss budgets for both path types.

use lumos_photonics::coupler::{CouplerKind, SplitterTree};
use lumos_photonics::link::LinkBudget;
use lumos_photonics::units::Decibels;
use lumos_photonics::waveguide::Waveguide;

use crate::config::PhnetConfig;

/// Geometric + loss summary of the interposer's optical paths.
#[derive(Debug, Clone, PartialEq)]
pub struct InterposerLayout {
    /// Worst-case SWMR (memory → compute broadcast) budget, per lane.
    pub swmr_budget: LinkBudget,
    /// Worst-case SWSR (compute → memory) budget, per writer gateway.
    pub swsr_budget: LinkBudget,
    /// Worst-case one-way photon flight time, nanoseconds.
    pub flight_ns: f64,
    /// Total SWMR bus length, millimetres.
    pub swmr_bus_mm: f64,
}

impl InterposerLayout {
    /// Derives the layout from a network configuration.
    ///
    /// The SWMR bus of each lane visits all `compute_chiplets` at
    /// `chiplet_pitch_mm` spacing; the worst-case reader sits at the end
    /// of the bus behind every other chiplet's filter bank. SWSR
    /// waveguides run point-to-point with at most the full bus length.
    pub fn from_config(cfg: &PhnetConfig) -> Self {
        // Interposer-scale routing crosses the dense SWSR waveguide field,
        // where multi-layer crossings cost ~0.1 dB each.
        let wg = Waveguide {
            crossing_db: 0.1,
            ..Waveguide::soi_strip()
        };
        let n = cfg.compute_chiplets;
        let bus_mm = cfg.chiplet_pitch_mm * n as f64;
        // Two 90° bends per chiplet passed, one crossing per SWSR
        // waveguide crossed on the shared interposer routing layer.
        let bends = 2 * n as u32;
        let crossings = cfg.total_compute_gateways() as u32;

        // Off-resonance through loss of one 64-ring filter bank that a
        // bypassing wavelength pays (only its own ring is near resonance
        // at each reader; the rest are detuned by at least one channel).
        let bank_through = Decibels::new(0.002 * cfg.wavelengths as f64);
        let upstream_banks = (n - 1) as f64;

        let swmr_budget = LinkBudget::new()
            .stage("laser coupler", CouplerKind::Grating.insertion_loss())
            .stage(
                "feed waveguide",
                wg.path_loss(cfg.chiplet_pitch_mm / 2.0, 2, 0),
            )
            .stage("modulator row", Decibels::new(1.0))
            .stage("broadcast bus", wg.path_loss(bus_mm, bends, crossings))
            .stage("upstream reader banks", bank_through * upstream_banks)
            .stage(
                "broadcast split",
                SplitterTree::new(n.max(1)).per_output_loss(),
            )
            .stage("drop filter", Decibels::new(1.0));

        let swsr_budget = LinkBudget::new()
            .stage("laser coupler", CouplerKind::Grating.insertion_loss())
            .stage(
                "feed waveguide",
                wg.path_loss(cfg.chiplet_pitch_mm / 2.0, 2, 0),
            )
            .stage("modulator row", Decibels::new(1.0))
            .stage(
                "return waveguide",
                wg.path_loss(bus_mm, bends, crossings / 2),
            )
            .stage("memory filter row", Decibels::new(1.0));

        InterposerLayout {
            swmr_budget,
            swsr_budget,
            flight_ns: wg.flight_time_ps(bus_mm) / 1e3,
            swmr_bus_mm: bus_mm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swmr_lossier_than_swsr() {
        let layout = InterposerLayout::from_config(&PhnetConfig::paper_table1());
        assert!(
            layout.swmr_budget.total_loss().value() > layout.swsr_budget.total_loss().value(),
            "broadcast path must dominate the loss budget"
        );
    }

    #[test]
    fn more_chiplets_more_loss() {
        let mut small = PhnetConfig::paper_table1();
        small.compute_chiplets = 4;
        let mut large = PhnetConfig::paper_table1();
        large.compute_chiplets = 16;
        let a = InterposerLayout::from_config(&small);
        let b = InterposerLayout::from_config(&large);
        assert!(b.swmr_budget.total_loss().value() > a.swmr_budget.total_loss().value());
        assert!(b.flight_ns > a.flight_ns);
    }

    #[test]
    fn table1_budget_is_reasonable() {
        let layout = InterposerLayout::from_config(&PhnetConfig::paper_table1());
        let total = layout.swmr_budget.total_loss().value();
        // SWMR trees for 8 chiplets land in the 20-35 dB band in the
        // photonic NoC literature; sanity-check we're in that regime.
        assert!(
            (15.0..40.0).contains(&total),
            "SWMR loss {total} dB out of expected band"
        );
        // 64 mm bus at n_g = 4.2 → ~0.9 ns flight.
        assert!((layout.flight_ns - 0.9).abs() < 0.2, "{}", layout.flight_ns);
    }

    #[test]
    fn budget_breakdown_is_complete() {
        let layout = InterposerLayout::from_config(&PhnetConfig::paper_table1());
        let text = layout.swmr_budget.breakdown();
        for stage in [
            "laser coupler",
            "modulator row",
            "broadcast bus",
            "broadcast split",
            "drop filter",
        ] {
            assert!(text.contains(stage), "missing stage {stage}");
        }
    }
}
