//! Epoch-based reconfiguration controller.
//!
//! ReSiPI (paper §IV) monitors inter-chiplet traffic in time epochs and
//! activates only the gateways the observed demand needs, retuning the
//! PCM couplers and dimming the laser accordingly. PROWAVES achieves a
//! similar effect by scaling the number of active *wavelengths* instead.
//! Both are implemented here, alongside static baselines, so the
//! policies can be compared (ablation A3 in the docs/ARCHITECTURE.md
//! experiment index).

use lumos_photonics::pcmc::PcmCoupler;

/// How the interposer adapts to traffic load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReconfigPolicy {
    /// ReSiPI: per-chiplet gateway activation via PCM couplers.
    ResipiGateways,
    /// PROWAVES: global wavelength scaling (all gateways stay active).
    ProwavesWavelengths,
    /// Everything always on (maximum bandwidth, maximum power).
    StaticFull,
    /// One gateway per chiplet, all wavelengths (minimum-power static).
    StaticMin,
}

/// The active resource set chosen for an epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveSet {
    /// Active writer/reader gateways per compute chiplet.
    pub gateways_per_chiplet: Vec<usize>,
    /// Active memory-side broadcast gateways.
    pub memory_gateways: usize,
    /// Active wavelengths per gateway.
    pub wavelengths: usize,
}

impl ActiveSet {
    /// Total active compute gateways.
    pub fn total_compute_gateways(&self) -> usize {
        self.gateways_per_chiplet.iter().sum()
    }
}

/// Cost of applying a reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReconfigCost {
    /// PCM write energy, joules.
    pub energy_j: f64,
    /// Stall before the new configuration is usable, nanoseconds.
    pub latency_ns: f64,
    /// Number of PCM couplers rewritten.
    pub pcmc_writes: usize,
}

/// Epoch-granularity controller state.
///
/// # Examples
///
/// ```
/// use lumos_phnet::controller::{EpochController, ReconfigPolicy};
///
/// let mut ctl = EpochController::new(ReconfigPolicy::ResipiGateways, 8, 4, 4, 64);
/// // A light epoch: only one chiplet moves data.
/// let demand = vec![100_000_000.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
/// let (set, cost) = ctl.plan_epoch(&demand, 768.0);
/// assert_eq!(set.gateways_per_chiplet[0], 1); // 100 Mb/s << one gateway
/// assert!(set.gateways_per_chiplet[1..].iter().all(|&g| g == 1));
/// assert!(cost.pcmc_writes > 0); // scaled down from the full boot state
/// ```
#[derive(Debug, Clone)]
pub struct EpochController {
    policy: ReconfigPolicy,
    chiplets: usize,
    gateways_per_chiplet: usize,
    memory_gateways: usize,
    wavelengths: usize,
    current: ActiveSet,
    pcmc: PcmCoupler,
    total_cost: ReconfigCost,
    reconfigs: usize,
}

impl EpochController {
    /// Creates a controller booted in the all-on state.
    ///
    /// # Panics
    ///
    /// Panics if any capacity argument is zero.
    pub fn new(
        policy: ReconfigPolicy,
        chiplets: usize,
        gateways_per_chiplet: usize,
        memory_gateways: usize,
        wavelengths: usize,
    ) -> Self {
        assert!(
            chiplets > 0 && gateways_per_chiplet > 0 && memory_gateways > 0 && wavelengths > 0,
            "controller capacities must be positive"
        );
        EpochController {
            policy,
            chiplets,
            gateways_per_chiplet,
            memory_gateways,
            wavelengths,
            current: ActiveSet {
                gateways_per_chiplet: vec![gateways_per_chiplet; chiplets],
                memory_gateways,
                wavelengths,
            },
            pcmc: PcmCoupler::typical(),
            total_cost: ReconfigCost::default(),
            reconfigs: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> ReconfigPolicy {
        self.policy
    }

    /// The currently active resource set.
    pub fn current(&self) -> &ActiveSet {
        &self.current
    }

    /// Number of reconfigurations applied so far.
    pub fn reconfig_count(&self) -> usize {
        self.reconfigs
    }

    /// Accumulated reconfiguration cost.
    pub fn total_cost(&self) -> ReconfigCost {
        self.total_cost
    }

    /// Plans the next epoch from the observed per-chiplet demand (bits
    /// per second each compute chiplet wants to move) and the gateway
    /// line rate in Gb/s. Returns the chosen set and the cost of
    /// switching to it (zero when unchanged).
    ///
    /// # Panics
    ///
    /// Panics if `demand_bps.len()` differs from the chiplet count.
    pub fn plan_epoch(
        &mut self,
        demand_bps: &[f64],
        gateway_gbps: f64,
    ) -> (ActiveSet, ReconfigCost) {
        assert_eq!(
            demand_bps.len(),
            self.chiplets,
            "demand vector must cover every chiplet"
        );
        let target = match self.policy {
            ReconfigPolicy::StaticFull => ActiveSet {
                gateways_per_chiplet: vec![self.gateways_per_chiplet; self.chiplets],
                memory_gateways: self.memory_gateways,
                wavelengths: self.wavelengths,
            },
            ReconfigPolicy::StaticMin => ActiveSet {
                gateways_per_chiplet: vec![1; self.chiplets],
                memory_gateways: 1,
                wavelengths: self.wavelengths,
            },
            ReconfigPolicy::ResipiGateways => {
                let per_gateway = gateway_gbps * 1e9;
                let gws: Vec<usize> = demand_bps
                    .iter()
                    .map(|&d| {
                        ((d / per_gateway).ceil() as usize).clamp(1, self.gateways_per_chiplet)
                    })
                    .collect();
                let total_demand: f64 = demand_bps.iter().sum();
                let mem =
                    ((total_demand / per_gateway).ceil() as usize).clamp(1, self.memory_gateways);
                ActiveSet {
                    gateways_per_chiplet: gws,
                    memory_gateways: mem,
                    wavelengths: self.wavelengths,
                }
            }
            ReconfigPolicy::ProwavesWavelengths => {
                // Scale wavelengths so the busiest chiplet's full gateway
                // complement covers its demand; minimum 4 λ to keep links
                // alive.
                let per_lambda = self.rate_per_lambda(gateway_gbps) * 1e9;
                let busiest = demand_bps.iter().cloned().fold(0.0, f64::max);
                let needed = busiest / (self.gateways_per_chiplet as f64 * per_lambda);
                let lambdas = (needed.ceil() as usize).clamp(4, self.wavelengths);
                ActiveSet {
                    gateways_per_chiplet: vec![self.gateways_per_chiplet; self.chiplets],
                    memory_gateways: self.memory_gateways,
                    wavelengths: lambdas,
                }
            }
        };
        let cost = self.apply(target.clone());
        (target, cost)
    }

    fn rate_per_lambda(&self, gateway_gbps: f64) -> f64 {
        gateway_gbps / self.wavelengths as f64
    }

    /// Applies `target`, returning the switching cost. Gateway-count
    /// changes rewrite one PCM coupler per gateway toggled (the tap
    /// fractions of the remaining chain also shift, but those writes
    /// overlap the same transition window); the stall is one PCM write
    /// latency when anything changed.
    fn apply(&mut self, target: ActiveSet) -> ReconfigCost {
        if target == self.current {
            return ReconfigCost::default();
        }
        let mut toggles = 0usize;
        for (new, old) in target
            .gateways_per_chiplet
            .iter()
            .zip(&self.current.gateways_per_chiplet)
        {
            toggles += new.abs_diff(*old);
        }
        toggles += target
            .memory_gateways
            .abs_diff(self.current.memory_gateways);
        // Wavelength-only changes (PROWAVES) need no PCM writes: the
        // laser bank gates channels electronically.
        let cost = if toggles > 0 {
            ReconfigCost {
                energy_j: self.pcmc.write_energy_nj * 1e-9 * toggles as f64,
                latency_ns: self.pcmc.write_latency_ns,
                pcmc_writes: toggles,
            }
        } else {
            ReconfigCost {
                energy_j: 0.0,
                latency_ns: 0.0,
                pcmc_writes: 0,
            }
        };
        self.total_cost.energy_j += cost.energy_j;
        self.total_cost.latency_ns += cost.latency_ns;
        self.total_cost.pcmc_writes += cost.pcmc_writes;
        self.reconfigs += 1;
        self.current = target;
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(v: &[f64]) -> Vec<f64> {
        v.to_vec()
    }

    #[test]
    fn resipi_scales_gateways_with_demand() {
        let mut c = EpochController::new(ReconfigPolicy::ResipiGateways, 4, 4, 4, 64);
        // 768 Gb/s per gateway. Demands: 0.1, 1, 2.5, 4 gateways' worth.
        let d = demand(&[76.8e9, 768e9, 1920e9, 3072e9]);
        let (set, _) = c.plan_epoch(&d, 768.0);
        assert_eq!(set.gateways_per_chiplet, vec![1, 1, 3, 4]);
        // Memory side covers the sum (7.6 gateways' worth, clamped to 4).
        assert_eq!(set.memory_gateways, 4);
    }

    #[test]
    fn resipi_idle_floors_at_one() {
        let mut c = EpochController::new(ReconfigPolicy::ResipiGateways, 3, 4, 2, 64);
        let (set, _) = c.plan_epoch(&demand(&[0.0, 0.0, 0.0]), 768.0);
        assert_eq!(set.gateways_per_chiplet, vec![1, 1, 1]);
        assert_eq!(set.memory_gateways, 1);
    }

    #[test]
    fn prowaves_scales_wavelengths_not_gateways() {
        let mut c = EpochController::new(ReconfigPolicy::ProwavesWavelengths, 2, 4, 2, 64);
        // Busiest chiplet wants 1/8 of its 4-gateway capacity.
        let (set, _) = c.plan_epoch(&demand(&[384e9, 10e9]), 768.0);
        assert_eq!(set.gateways_per_chiplet, vec![4, 4]);
        assert!(set.wavelengths < 64, "wavelengths should shrink");
        assert!(set.wavelengths >= 4);
        // Heavy load restores the full grid.
        let (set, _) = c.plan_epoch(&demand(&[3072e9, 3072e9]), 768.0);
        assert_eq!(set.wavelengths, 64);
    }

    #[test]
    fn static_policies_never_reconfigure_after_boot() {
        for policy in [ReconfigPolicy::StaticFull, ReconfigPolicy::StaticMin] {
            let mut c = EpochController::new(policy, 2, 4, 2, 64);
            let (_, first) = c.plan_epoch(&demand(&[1e12, 0.0]), 768.0);
            let (_, second) = c.plan_epoch(&demand(&[0.0, 1e12]), 768.0);
            // StaticMin pays one boot transition (4→1 gateways); after
            // that, nothing ever changes.
            assert_eq!(second, ReconfigCost::default(), "{policy:?}");
            let _ = first;
        }
    }

    #[test]
    fn pcm_cost_scales_with_toggles() {
        let mut c = EpochController::new(ReconfigPolicy::ResipiGateways, 2, 4, 4, 64);
        // Boot state: all 4+4 compute, 4 memory. Scale down to 1+1 / 1.
        let (_, cost) = c.plan_epoch(&demand(&[0.0, 0.0]), 768.0);
        assert_eq!(cost.pcmc_writes, 3 + 3 + 3);
        assert!(cost.energy_j > 0.0);
        assert!(cost.latency_ns > 0.0);
        // Unchanged plan: free.
        let (_, cost2) = c.plan_epoch(&demand(&[0.0, 0.0]), 768.0);
        assert_eq!(cost2, ReconfigCost::default());
    }

    #[test]
    fn totals_accumulate() {
        let mut c = EpochController::new(ReconfigPolicy::ResipiGateways, 2, 2, 2, 64);
        let _ = c.plan_epoch(&demand(&[0.0, 0.0]), 768.0);
        let _ = c.plan_epoch(&demand(&[2e12, 2e12]), 768.0);
        assert!(c.total_cost().pcmc_writes > 0);
        assert_eq!(c.reconfig_count(), 2);
    }

    #[test]
    #[should_panic(expected = "must cover every chiplet")]
    fn demand_length_checked() {
        let mut c = EpochController::new(ReconfigPolicy::ResipiGateways, 3, 2, 2, 64);
        let _ = c.plan_epoch(&[0.0], 768.0);
    }
}
