//! Property-based tests for the photonic interposer invariants.

use lumos_phnet::{PhnetConfig, PhotonicInterposer, ReconfigPolicy};
use lumos_sim::SimTime;
use proptest::prelude::*;

fn net() -> PhotonicInterposer {
    PhotonicInterposer::new(PhnetConfig::paper_table1()).expect("Table 1 point is feasible")
}

proptest! {
    /// Transfers are causal and bit-conserving under arbitrary traffic.
    #[test]
    fn transfers_causal(
        ops in proptest::collection::vec(
            (0usize..8, 1u64..10_000_000, 0u64..100, prop::bool::ANY),
            1..60,
        ),
    ) {
        let mut n = net();
        let mut expected_bits = 0u64;
        let mut end = SimTime::ZERO;
        for (chiplet, bits, at_us, is_write) in ops {
            let at = SimTime::from_us(at_us);
            let t = if is_write {
                n.write(at, chiplet, bits)
            } else {
                n.read_unicast(at, chiplet, bits)
            };
            prop_assert!(t.start >= at);
            prop_assert!(t.finish >= t.start);
            expected_bits += bits;
            end = end.max(t.finish);
        }
        let report = n.finalize(end);
        prop_assert_eq!(report.bits_moved, expected_bits);
        prop_assert!(report.energy_j > 0.0);
    }

    /// Static power is monotone in the number of active gateways: a
    /// heavier demand vector never yields lower idle power.
    #[test]
    fn power_monotone_in_demand(light in 0.0f64..50e9, heavy_extra in 1e9f64..5e12) {
        let mut a = net();
        let mut b = net();
        let demand_light = vec![light; 8];
        let demand_heavy = vec![light + heavy_extra; 8];
        let _ = a.reconfigure(SimTime::from_us(1), &demand_light);
        let _ = b.reconfigure(SimTime::from_us(1), &demand_heavy);
        let pa = a.static_power_of(a.active_set());
        let pb = b.static_power_of(b.active_set());
        prop_assert!(pb >= pa - 1e-9, "heavier demand lowered power: {pa} -> {pb}");
    }

    /// Reconfiguring twice with the same demand is free the second time
    /// (PCM states are nonvolatile).
    #[test]
    fn reconfigure_idempotent(demand_gbps in proptest::collection::vec(0.0f64..4e12, 8)) {
        let mut n = net();
        let _ = n.reconfigure(SimTime::from_us(1), &demand_gbps);
        let second = n.reconfigure(SimTime::from_us(2), &demand_gbps);
        prop_assert_eq!(second, SimTime::ZERO);
    }

    /// Broadcast reads serialize on one lane: their span is at least the
    /// single-lane serialization time regardless of active gateways.
    #[test]
    fn broadcast_floor(bits in 1u64..100_000_000) {
        let mut n = net();
        let t = n.read_broadcast(SimTime::ZERO, bits);
        let lane_gbps = 64.0 * 12.0;
        let floor_s = bits as f64 / (lane_gbps * 1e9);
        let span = t.finish.saturating_sub(t.start).as_secs_f64();
        prop_assert!(span >= floor_s * 0.999, "span {span} < floor {floor_s}");
    }

    /// Under every policy, the interposer still moves data and reports
    /// finite, positive power.
    #[test]
    fn all_policies_functional(policy_idx in 0usize..4, bits in 1u64..10_000_000) {
        let policy = [
            ReconfigPolicy::ResipiGateways,
            ReconfigPolicy::ProwavesWavelengths,
            ReconfigPolicy::StaticFull,
            ReconfigPolicy::StaticMin,
        ][policy_idx];
        let mut cfg = PhnetConfig::paper_table1();
        cfg.policy = policy;
        let mut n = PhotonicInterposer::new(cfg).expect("feasible");
        let _ = n.reconfigure(SimTime::from_us(1), &[1e11; 8]);
        let t = n.write(SimTime::from_us(2), 3, bits);
        prop_assert!(t.finish > t.start);
        let report = n.finalize(t.finish + SimTime::from_us(1));
        prop_assert!(report.avg_power_w.is_finite() && report.avg_power_w > 0.0);
    }
}
