//! Property tests for the windowed-metrics core: counter monotonicity,
//! exact integer-ps window boundaries, decimation bounds, span
//! conservation, and byte-identical exports across same-input reruns.

use lumos_metrics::{export_jsonl, export_prometheus, MetricKind, MetricsRegistry};
use proptest::prelude::*;
use proptest::{collection, sample};

/// One recorded operation against a small fixed metric set.
#[derive(Debug, Clone)]
enum Op {
    Set(u64, f64),
    Add(u64, f64),
    Span(u64, u64, f64),
    Observe(u64, f64),
}

fn arb_value() -> impl Strategy<Value = f64> {
    sample::select(vec![
        0.0,
        0.25,
        1.0,
        -3.5,
        1e9,
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
    ])
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0u32..4, 0u64..5_000_000, 0u64..2_000_000, arb_value()).prop_map(|(tag, ts, dur, v)| match tag
    {
        0 => Op::Set(ts, v),
        1 => Op::Add(ts, v),
        2 => Op::Span(ts, dur, v),
        _ => Op::Observe(ts, v),
    })
}

/// Replays `ops` into a fresh registry: gauge/counter/histogram plus a
/// labelled counter fed by the span ops.
fn replay(ops: &[Op], window_ps: u64, max_windows: usize) -> MetricsRegistry {
    let r = MetricsRegistry::windowed(window_ps, max_windows);
    let g = r.gauge("depth");
    let c = r.counter("tokens_total");
    let u = r.counter("busy_ps{class=\"phot_dense\"}");
    let h = r.histogram("latency_ms", &[1.0, 10.0, 100.0]);
    for op in ops {
        match *op {
            Op::Set(ts, v) => r.set(g, ts, v),
            Op::Add(ts, v) => r.add(c, ts, v),
            Op::Span(ts, dur, v) => r.add_span(u, ts, dur, v.abs()),
            Op::Observe(ts, v) => r.observe(h, ts, v),
        }
    }
    r
}

proptest! {
    /// Counter cumulative series never decrease, whatever the deltas
    /// (negative and non-finite increments clamp to zero), and the
    /// final cumulative value equals the series total.
    #[test]
    fn counters_are_monotone(
        ops in collection::vec(arb_op(), 0..64),
        window_ps in 1u64..100_000,
        max_windows in 2usize..32,
    ) {
        let snap = replay(&ops, window_ps, max_windows).snapshot();
        for s in snap.series.iter().filter(|s| s.kind == MetricKind::Counter) {
            prop_assert!(
                s.windows.windows(2).all(|w| w[0].cumulative <= w[1].cumulative),
                "{}: cumulative series decreased", s.name
            );
            prop_assert!(s.windows.iter().all(|w| w.sum >= 0.0));
            if let Some(last) = s.windows.last() {
                prop_assert!((last.cumulative - s.total_sum).abs() <= 1e-9 * s.total_sum.abs().max(1.0));
            }
        }
    }

    /// Every sample lands in the window whose integer-ps boundaries
    /// contain its timestamp: `start_ps ≡ 0 (mod effective width)` and
    /// the slot index is exactly `ts / width`.
    #[test]
    fn window_boundaries_are_exact_integer_ps(
        ops in collection::vec(arb_op(), 1..64),
        window_ps in 1u64..100_000,
        max_windows in 2usize..32,
    ) {
        let snap = replay(&ops, window_ps, max_windows).snapshot();
        for s in &snap.series {
            prop_assert_eq!(s.window_ps, snap.window_ps << s.decimations);
            for w in &s.windows {
                prop_assert_eq!(w.start_ps % s.window_ps, 0,
                    "window start must be a multiple of the effective width");
            }
            prop_assert!(
                s.windows.windows(2).all(|w| w[0].start_ps < w[1].start_ps),
                "windows must be strictly ordered"
            );
        }
    }

    /// No series ever exceeds its window bound, decimation is explicit
    /// whenever the bound forced coarsening, and sample counts are
    /// conserved through merges.
    #[test]
    fn decimation_preserves_bounds_and_counts(
        ops in collection::vec(arb_op(), 0..64),
        window_ps in 1u64..10_000,
        max_windows in 2usize..16,
    ) {
        let snap = replay(&ops, window_ps, max_windows).snapshot();
        for s in &snap.series {
            prop_assert!(s.windows.len() <= snap.max_windows,
                "{}: {} windows > bound {}", &s.name, s.windows.len(), snap.max_windows);
            let window_total: u64 = s.windows.iter().map(|w| w.count).sum();
            prop_assert_eq!(window_total, s.total_count,
                "decimation must conserve sample counts");
            // A sample past the bound must have coarsened the series
            // explicitly rather than dropping its tail: the covered
            // range never exceeds bound × effective width.
            let covered = s.windows.last().map(|w| w.start_ps + s.window_ps).unwrap_or(0);
            prop_assert!(covered <= s.window_ps.saturating_mul(snap.max_windows as u64));
        }
    }

    /// `add_span` conserves its amount: the window increments sum back
    /// to the recorded amounts (up to float round-off).
    #[test]
    fn spans_conserve_amount(
        spans in collection::vec((0u64..5_000_000, 0u64..2_000_000, 0f64..1e6), 1..24),
        window_ps in 1u64..10_000,
    ) {
        let r = MetricsRegistry::windowed(window_ps, 64);
        let u = r.counter("busy_ps");
        let mut expected = 0.0f64;
        for (start, dur, amount) in &spans {
            r.add_span(u, *start, *dur, *amount);
            expected += amount;
        }
        let snap = r.snapshot();
        let s = snap.series_named("busy_ps").expect("registered series");
        let total: f64 = s.windows.iter().map(|w| w.sum).sum();
        prop_assert!((total - expected).abs() <= 1e-6 * expected.max(1.0),
            "distributed {total}, recorded {expected}");
    }

    /// Replaying the same operations yields byte-identical Prometheus
    /// and JSONL exports — the determinism contract the CI gate pins
    /// end-to-end on the examples.
    #[test]
    fn exports_are_byte_identical_across_reruns(
        ops in collection::vec(arb_op(), 0..64),
        window_ps in 1u64..100_000,
        max_windows in 2usize..32,
    ) {
        let a = replay(&ops, window_ps, max_windows).snapshot();
        let b = replay(&ops, window_ps, max_windows).snapshot();
        // Snapshots may hold NaN (gauge samples record raw values), so
        // the contract is pinned on the exported bytes, where
        // non-finite values render deterministically as `null`.
        prop_assert_eq!(export_prometheus(&a), export_prometheus(&b));
        let ja = export_jsonl(&a);
        prop_assert_eq!(&ja, &export_jsonl(&b));
        // Every JSONL line is a standalone object.
        for line in ja.lines() {
            prop_assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    /// The disabled registry is inert under any operation sequence.
    #[test]
    fn off_registry_is_inert(ops in collection::vec(arb_op(), 0..32)) {
        let r = replay(&ops, 0, 0); // clamps apply only when enabled
        let off = MetricsRegistry::off();
        let g = off.gauge("depth");
        for op in &ops {
            if let Op::Set(ts, v) = *op {
                off.set(g, ts, v);
            }
        }
        prop_assert!(off.snapshot().series.is_empty());
        prop_assert!(!off.enabled());
        // Enabled replay with clamped config still obeys its bounds.
        let snap = r.snapshot();
        prop_assert!(snap.window_ps >= 1);
        prop_assert!(snap.max_windows >= 2);
    }
}
