//! Byte-deterministic exporters for a [`MetricsSnapshot`].
//!
//! Two formats, both pure functions of the snapshot:
//!
//! * **Prometheus text exposition** ([`export_prometheus`]) — `# TYPE`
//!   headers, one sample per window with millisecond virtual-clock
//!   timestamps, histogram `_bucket`/`_sum`/`_count` families. Loads
//!   anywhere the exposition format does; the timestamps are *virtual*
//!   time, so this is a file-export dialect, not a live scrape target.
//! * **JSON lines** ([`export_jsonl`]) — one `meta` object per series
//!   followed by one object per non-empty window, ready for `jq` or a
//!   dataframe loader.
//!
//! Series arrive sorted by name from the snapshot; floats render via
//! the deterministic rules in [`crate::json`]. Same snapshot, same
//! bytes.

use crate::json;
use crate::series::{MetricKind, MetricsSnapshot, SeriesSnapshot};

/// Splits `name{labels}` into `(base, Some("labels"))` or `(name, None)`.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match (name.find('{'), name.rfind('}')) {
        (Some(open), Some(close)) if close > open => (&name[..open], Some(&name[open + 1..close])),
        _ => (name, None),
    }
}

/// Appends `suffix` to the base name, preserving any label set:
/// `x{m="a"}` + `_bucket` → `x_bucket{m="a"}`.
fn suffixed(name: &str, suffix: &str) -> String {
    let (base, labels) = split_labels(name);
    match labels {
        Some(l) => format!("{base}{suffix}{{{l}}}"),
        None => format!("{base}{suffix}"),
    }
}

/// Adds one `key="value"` label to the series name's label set.
fn with_label(name: &str, key: &str, value: &str) -> String {
    let (base, labels) = split_labels(name);
    match labels {
        Some(l) => format!("{base}{{{l},{key}=\"{value}\"}}"),
        None => format!("{base}{{{key}=\"{value}\"}}"),
    }
}

/// Renders a histogram upper bound as a Prometheus `le` label value.
fn le_label(bound: f64) -> String {
    format!("{bound}")
}

/// Virtual-clock milliseconds at the *end* of a window starting at
/// `start_ps` (exposition-format sample timestamps are int64 ms).
fn window_end_ms(start_ps: u64, window_ps: u64) -> u64 {
    start_ps.saturating_add(window_ps) / 1_000_000_000
}

fn prometheus_series(out: &mut String, s: &SeriesSnapshot, last_type: &mut String) {
    let (base, _) = split_labels(&s.name);
    if base != last_type.as_str() {
        out.push_str(&format!("# TYPE {base} {}\n", s.kind.as_str()));
        *last_type = base.to_owned();
    }
    // Resolution provenance: decimation is explicit, never silent.
    out.push_str(&format!(
        "# window {} window_ps={} decimations={}\n",
        s.name, s.window_ps, s.decimations
    ));
    match s.kind {
        MetricKind::Gauge => {
            for w in &s.windows {
                out.push_str(&format!(
                    "{} {} {}\n",
                    s.name,
                    json::num(w.last),
                    window_end_ms(w.start_ps, s.window_ps)
                ));
            }
        }
        MetricKind::Counter => {
            for w in &s.windows {
                out.push_str(&format!(
                    "{} {} {}\n",
                    s.name,
                    json::num(w.cumulative),
                    window_end_ms(w.start_ps, s.window_ps)
                ));
            }
        }
        MetricKind::Histogram => {
            let end_ms = s
                .windows
                .last()
                .map(|w| window_end_ms(w.start_ps, s.window_ps))
                .unwrap_or(0);
            let mut running = 0u64;
            for (i, count) in s.bucket_counts.iter().enumerate() {
                running += count;
                let le = s
                    .bounds
                    .get(i)
                    .map(|b| le_label(*b))
                    .unwrap_or_else(|| "+Inf".to_owned());
                out.push_str(&format!(
                    "{} {running} {end_ms}\n",
                    with_label(&suffixed(&s.name, "_bucket"), "le", &le)
                ));
            }
            out.push_str(&format!(
                "{} {} {end_ms}\n",
                suffixed(&s.name, "_sum"),
                json::num(s.total_sum)
            ));
            out.push_str(&format!(
                "{} {} {end_ms}\n",
                suffixed(&s.name, "_count"),
                s.total_count
            ));
        }
    }
}

/// Serializes the snapshot in the Prometheus text exposition format.
///
/// Deterministic: the bytes are a pure function of the snapshot, so a
/// deterministic run (same config, same seed) exports byte-identical
/// files across reruns.
///
/// # Examples
///
/// ```
/// use lumos_metrics::{export_prometheus, MetricsRegistry};
///
/// let r = MetricsRegistry::windowed(1_000_000, 64);
/// let tokens = r.counter("serve_tokens_total{model=\"gpt2\"}");
/// r.add(tokens, 500_000, 1.0);
/// let text = export_prometheus(&r.snapshot());
/// assert!(text.contains("# TYPE serve_tokens_total counter"));
/// assert_eq!(text, export_prometheus(&r.snapshot()));
/// ```
pub fn export_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_type = String::new();
    for s in &snap.series {
        prometheus_series(&mut out, s, &mut last_type);
    }
    out
}

fn jsonl_meta(s: &SeriesSnapshot) -> String {
    let mut fields = vec![
        ("meta", json::string(&s.name)),
        ("kind", json::string(s.kind.as_str())),
        ("window_ps", format!("{}", s.window_ps)),
        ("decimations", format!("{}", s.decimations)),
        ("total_count", format!("{}", s.total_count)),
        ("total_sum", json::num(s.total_sum)),
    ];
    if s.kind == MetricKind::Histogram {
        fields.push(("bounds", json::num_array(&s.bounds)));
        fields.push(("bucket_counts", json::u64_array(&s.bucket_counts)));
    }
    json::object(&fields)
}

/// Serializes the snapshot as JSON lines: for each series a `meta`
/// object, then one object per non-empty window (`t_ps` is the window
/// start on the virtual clock). Byte-deterministic under the same
/// rules as [`export_prometheus`].
pub fn export_jsonl(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for s in &snap.series {
        out.push_str(&jsonl_meta(s));
        out.push('\n');
        for w in &s.windows {
            let mut fields = vec![
                ("series", json::string(&s.name)),
                ("t_ps", format!("{}", w.start_ps)),
                ("count", format!("{}", w.count)),
                ("sum", json::num(w.sum)),
                ("min", json::num(w.min)),
                ("max", json::num(w.max)),
                ("last", json::num(w.last)),
            ];
            if s.kind == MetricKind::Counter {
                fields.push(("cum", json::num(w.cumulative)));
            }
            out.push_str(&json::object(&fields));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let r = MetricsRegistry::windowed(1_000_000_000, 64);
        let depth = r.gauge("serve_queue_depth{model=\"lenet5\"}");
        let tokens = r.counter("serve_tokens_total{model=\"gpt2\"}");
        let lat = r.histogram("serve_latency_ms", &[1.0, 10.0, 100.0]);
        r.set(depth, 0, 2.0);
        r.set(depth, 1_500_000_000, 3.0);
        r.add(tokens, 200_000_000, 4.0);
        r.add(tokens, 2_200_000_000, 1.0);
        r.observe(lat, 900_000_000, 5.0);
        r.observe(lat, 900_000_000, 500.0);
        r
    }

    #[test]
    fn prometheus_export_shape() {
        let text = export_prometheus(&sample_registry().snapshot());
        assert!(text.contains("# TYPE serve_latency_ms histogram"));
        assert!(text.contains("# TYPE serve_queue_depth gauge"));
        assert!(text.contains("# TYPE serve_tokens_total counter"));
        // Counter samples are cumulative; gauge samples are last-level.
        assert!(text.contains("serve_tokens_total{model=\"gpt2\"} 4 1\n"));
        assert!(text.contains("serve_tokens_total{model=\"gpt2\"} 5 3\n"));
        assert!(text.contains("serve_queue_depth{model=\"lenet5\"} 3 2\n"));
        // Histogram buckets cumulate, with an +Inf overflow family.
        assert!(text.contains("serve_latency_ms_bucket{le=\"10\"} 1 1\n"));
        assert!(text.contains("serve_latency_ms_bucket{le=\"+Inf\"} 2 1\n"));
        assert!(text.contains("serve_latency_ms_sum 505 1\n"));
        assert!(text.contains("serve_latency_ms_count 2 1\n"));
    }

    #[test]
    fn jsonl_export_shape() {
        let lines: Vec<String> = export_jsonl(&sample_registry().snapshot())
            .lines()
            .map(str::to_owned)
            .collect();
        // latency: meta + 1 window; queue: meta + 2; tokens: meta + 2.
        assert_eq!(lines.len(), 8);
        assert!(lines[0].starts_with("{\"meta\":\"serve_latency_ms\""));
        assert!(lines[0].contains("\"bounds\":[1,10,100]"));
        assert!(lines[5].starts_with("{\"meta\":\"serve_tokens_total"));
        assert!(lines[6].contains("\"cum\":4"));
        assert!(lines[7].contains("\"cum\":5"));
    }

    #[test]
    fn exports_are_pure_functions_of_the_snapshot() {
        let snap = sample_registry().snapshot();
        assert_eq!(export_prometheus(&snap), export_prometheus(&snap));
        assert_eq!(export_jsonl(&snap), export_jsonl(&snap));
        let again = sample_registry().snapshot();
        assert_eq!(export_prometheus(&snap), export_prometheus(&again));
        assert_eq!(export_jsonl(&snap), export_jsonl(&again));
    }

    #[test]
    fn type_header_emitted_once_per_family() {
        let r = MetricsRegistry::with_defaults();
        for model in ["a", "b"] {
            let id = r.counter(&format!("tokens_total{{model=\"{model}\"}}"));
            r.add(id, 0, 1.0);
        }
        let text = export_prometheus(&r.snapshot());
        assert_eq!(text.matches("# TYPE tokens_total counter").count(), 1);
    }
}
