//! Windowed time series on the virtual clock.
//!
//! Every sample lands in the window `ts_ps / effective_window_ps`,
//! where the *effective* window width is the configured base width
//! times `2^decimations`. A series never exceeds its configured window
//! bound: when a sample would land past the last allowed slot, adjacent
//! window pairs are merged and the per-series decimation count is
//! incremented — coverage is preserved at coarser resolution, and the
//! decimation count makes the resolution loss explicit (never a silent
//! truncation of the tail).

/// What a metric measures and how windows aggregate it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// A sampled level (queue depth, resident streams). Windows keep
    /// count/sum/min/max and the last-sampled value.
    Gauge,
    /// A monotone accumulation (tokens, busy picoseconds, joules).
    /// Windows keep the per-window increment; the cumulative series is
    /// nondecreasing by construction (negative deltas are clamped).
    Counter,
    /// A fixed-bucket distribution (latencies, batch occupancy).
    /// Windows keep count/sum/min/max; bucket counts accumulate over
    /// the whole run.
    Histogram,
}

impl MetricKind {
    /// Lower-case export label (`gauge` / `counter` / `histogram`).
    pub fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Gauge => "gauge",
            MetricKind::Counter => "counter",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Per-window aggregate state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct WindowAgg {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub last: f64,
}

impl WindowAgg {
    fn empty() -> Self {
        WindowAgg {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            last: 0.0,
        }
    }

    fn sample(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.last = v;
    }

    /// Folds the later window `b` into `self` (pairwise decimation).
    fn merge(&mut self, b: &WindowAgg) {
        if b.count > 0 {
            self.last = b.last;
        }
        self.count += b.count;
        self.sum += b.sum;
        self.min = self.min.min(b.min);
        self.max = self.max.max(b.max);
    }
}

/// One registered metric's windowed state.
#[derive(Debug, Clone)]
pub(crate) struct Series {
    pub name: String,
    pub kind: MetricKind,
    /// Histogram bucket upper bounds (ascending, finite); empty for
    /// gauges and counters. An implicit `+Inf` overflow bucket follows.
    pub bounds: Vec<f64>,
    /// Run-cumulative bucket counts, `bounds.len() + 1` entries.
    pub bucket_counts: Vec<u64>,
    /// Pairwise merges applied so far; effective window width is
    /// `window_ps << decimations`.
    pub decimations: u32,
    /// Dense window slots from the virtual-clock origin.
    pub windows: Vec<WindowAgg>,
    pub total_count: u64,
    pub total_sum: f64,
}

impl Series {
    pub(crate) fn new(name: String, kind: MetricKind, bounds: Vec<f64>) -> Self {
        let buckets = match kind {
            MetricKind::Histogram => bounds.len() + 1,
            _ => 0,
        };
        Series {
            name,
            kind,
            bounds,
            bucket_counts: vec![0; buckets],
            decimations: 0,
            windows: Vec::new(),
            total_count: 0,
            total_sum: 0.0,
        }
    }

    fn slot_of(&self, ts_ps: u64, window_ps: u64) -> usize {
        ((ts_ps / window_ps) >> self.decimations) as usize
    }

    /// Halves resolution: merges adjacent window pairs in place.
    fn decimate(&mut self) {
        let merged = self.windows.len().div_ceil(2);
        for i in 0..merged {
            let mut agg = self.windows[2 * i];
            if let Some(b) = self.windows.get(2 * i + 1) {
                agg.merge(b);
            }
            self.windows[i] = agg;
        }
        self.windows.truncate(merged);
        self.decimations += 1;
    }

    /// Grows (and if necessary decimates) so `ts_ps` has a slot within
    /// the `max_windows` bound; returns that slot index.
    fn ensure_slot(&mut self, ts_ps: u64, window_ps: u64, max_windows: usize) -> usize {
        let mut slot = self.slot_of(ts_ps, window_ps);
        while slot >= max_windows {
            self.decimate();
            slot = self.slot_of(ts_ps, window_ps);
        }
        if slot >= self.windows.len() {
            self.windows.resize(slot + 1, WindowAgg::empty());
        }
        slot
    }

    pub(crate) fn set(&mut self, ts_ps: u64, v: f64, window_ps: u64, max_windows: usize) {
        let slot = self.ensure_slot(ts_ps, window_ps, max_windows);
        self.windows[slot].sample(v);
        self.total_count += 1;
        self.total_sum += v;
    }

    pub(crate) fn add(&mut self, ts_ps: u64, delta: f64, window_ps: u64, max_windows: usize) {
        let delta = if delta.is_finite() {
            delta.max(0.0)
        } else {
            0.0
        };
        self.set(ts_ps, delta, window_ps, max_windows);
    }

    /// Distributes `amount` over `[start_ps, start_ps + dur_ps)` in
    /// proportion to each window's overlap with the span. The workhorse
    /// behind utilization timelines (`amount` = weighted busy
    /// picoseconds) and energy-rate series (`amount` = joules).
    pub(crate) fn add_span(
        &mut self,
        start_ps: u64,
        dur_ps: u64,
        amount: f64,
        window_ps: u64,
        max_windows: usize,
    ) {
        let amount = if amount.is_finite() {
            amount.max(0.0)
        } else {
            0.0
        };
        if dur_ps == 0 {
            self.add(start_ps, amount, window_ps, max_windows);
            return;
        }
        let end_ps = start_ps.saturating_add(dur_ps);
        // Reserve the final slot first so decimation cannot strike
        // mid-distribution; slots for the whole span then exist at the
        // current resolution.
        self.ensure_slot(end_ps - 1, window_ps, max_windows);
        let first = self.slot_of(start_ps, window_ps);
        let last = self.slot_of(end_ps - 1, window_ps);
        let width = (window_ps as u128) << self.decimations;
        let (start, end) = (start_ps as u128, end_ps as u128);
        for slot in first..=last {
            let win_start = slot as u128 * width;
            let win_end = win_start + width;
            let overlap = end.min(win_end) - start.max(win_start);
            let share = amount * (overlap as f64 / dur_ps as f64);
            self.windows[slot].sample(share);
            self.total_count += 1;
            self.total_sum += share;
        }
    }

    pub(crate) fn observe(&mut self, ts_ps: u64, v: f64, window_ps: u64, max_windows: usize) {
        let bucket = self
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(self.bounds.len());
        self.bucket_counts[bucket] += 1;
        self.set(ts_ps, v, window_ps, max_windows);
    }

    pub(crate) fn snapshot(&self, window_ps: u64) -> SeriesSnapshot {
        let width = (window_ps as u128) << self.decimations;
        let mut windows = Vec::new();
        let mut cumulative = 0.0;
        for (slot, agg) in self.windows.iter().enumerate() {
            cumulative += agg.sum;
            if agg.count == 0 {
                continue;
            }
            windows.push(WindowSample {
                start_ps: u64::try_from(slot as u128 * width).unwrap_or(u64::MAX),
                count: agg.count,
                sum: agg.sum,
                min: agg.min,
                max: agg.max,
                last: agg.last,
                cumulative,
            });
        }
        SeriesSnapshot {
            name: self.name.clone(),
            kind: self.kind,
            window_ps: u64::try_from(width).unwrap_or(u64::MAX),
            decimations: self.decimations,
            total_count: self.total_count,
            total_sum: self.total_sum,
            bounds: self.bounds.clone(),
            bucket_counts: self.bucket_counts.clone(),
            windows,
        }
    }
}

/// An immutable copy of one series, taken by
/// [`MetricsRegistry::snapshot`](crate::MetricsRegistry::snapshot).
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Series name, optionally carrying `{label="value"}` suffixes.
    pub name: String,
    /// Aggregation kind.
    pub kind: MetricKind,
    /// Effective window width in picoseconds
    /// (base width × `2^decimations`).
    pub window_ps: u64,
    /// Pairwise window merges applied to keep the series within its
    /// length bound. Zero means full configured resolution.
    pub decimations: u32,
    /// Samples recorded over the whole run.
    pub total_count: u64,
    /// Sum of all recorded values (for counters: the final cumulative
    /// value).
    pub total_sum: f64,
    /// Histogram bucket upper bounds (empty unless
    /// [`MetricKind::Histogram`]).
    pub bounds: Vec<f64>,
    /// Run-cumulative histogram bucket counts (`bounds.len() + 1`
    /// entries, the final one the `+Inf` overflow bucket).
    pub bucket_counts: Vec<u64>,
    /// Non-empty windows, oldest first.
    pub windows: Vec<WindowSample>,
}

impl SeriesSnapshot {
    /// The series name with any `{...}` label suffix stripped.
    pub fn base_name(&self) -> &str {
        self.name.split('{').next().unwrap_or(&self.name)
    }

    /// Per-second rate of a window's increment (counter windows).
    pub fn rate_per_s(&self, w: &WindowSample) -> f64 {
        w.sum / (self.window_ps as f64 * 1e-12)
    }
}

/// One non-empty window of a [`SeriesSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSample {
    /// Window start on the virtual clock, integer picoseconds; the
    /// window covers `[start_ps, start_ps + window_ps)`.
    pub start_ps: u64,
    /// Samples that landed in this window.
    pub count: u64,
    /// Sum of sampled values (for counters: the window's increment).
    pub sum: f64,
    /// Smallest sampled value.
    pub min: f64,
    /// Largest sampled value.
    pub max: f64,
    /// Most recently sampled value.
    pub last: f64,
    /// Running total through this window (counters: the monotone
    /// cumulative series).
    pub cumulative: f64,
}

/// A full registry snapshot: every series, sorted by name.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Base (undecimated) window width in picoseconds.
    pub window_ps: u64,
    /// Per-series length bound the registry enforced.
    pub max_windows: usize,
    /// All registered series, sorted by name.
    pub series: Vec<SeriesSnapshot>,
}

impl MetricsSnapshot {
    /// Looks up a series by exact name.
    pub fn series_named(&self, name: &str) -> Option<&SeriesSnapshot> {
        self.series.iter().find(|s| s.name == name)
    }

    /// All series whose [`base_name`](SeriesSnapshot::base_name)
    /// matches `base` — i.e. every labelled variant of one metric
    /// family (`serve_tokens_total{model="gpt2"}`, …), in name order.
    pub fn series_with_base<'s>(
        &'s self,
        base: &'s str,
    ) -> impl Iterator<Item = &'s SeriesSnapshot> {
        self.series.iter().filter(move |s| s.base_name() == base)
    }

    /// Total pairwise merges across all series — nonzero whenever any
    /// series hit its length bound and coarsened.
    pub fn total_decimations(&self) -> u64 {
        self.series.iter().map(|s| u64::from(s.decimations)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_exact_integer_windows() {
        let mut s = Series::new("g".into(), MetricKind::Gauge, Vec::new());
        // window 100 ps: ts 99 → slot 0, ts 100 → slot 1.
        s.set(99, 1.0, 100, 16);
        s.set(100, 2.0, 100, 16);
        let snap = s.snapshot(100);
        assert_eq!(snap.windows.len(), 2);
        assert_eq!(snap.windows[0].start_ps, 0);
        assert_eq!(snap.windows[1].start_ps, 100);
        assert_eq!(snap.windows[1].last, 2.0);
    }

    #[test]
    fn decimation_bounds_length_and_preserves_totals() {
        let mut s = Series::new("c".into(), MetricKind::Counter, Vec::new());
        for t in 0..64u64 {
            s.add(t * 100, 1.0, 100, 8);
        }
        let snap = s.snapshot(100);
        assert!(snap.windows.len() <= 8);
        assert!(
            snap.decimations >= 3,
            "64 base slots into 8 needs >= 3 merges"
        );
        assert_eq!(snap.window_ps, 100 << snap.decimations);
        assert_eq!(snap.total_count, 64);
        assert_eq!(snap.total_sum, 64.0);
        let cum = snap.windows.last().expect("non-empty").cumulative;
        assert_eq!(cum, 64.0);
    }

    #[test]
    fn add_span_distributes_by_overlap() {
        let mut s = Series::new("u".into(), MetricKind::Counter, Vec::new());
        // Span [50, 250) over 100-ps windows: 50 ps in w0, 100 in w1,
        // 50 in w2.
        s.add_span(50, 200, 200.0, 100, 16);
        let snap = s.snapshot(100);
        let sums: Vec<f64> = snap.windows.iter().map(|w| w.sum).collect();
        assert_eq!(sums, vec![50.0, 100.0, 50.0]);
        assert_eq!(snap.total_sum, 200.0);
    }

    #[test]
    fn histogram_buckets_count_cumulatively() {
        let mut s = Series::new("h".into(), MetricKind::Histogram, vec![1.0, 10.0]);
        s.observe(0, 0.5, 100, 16);
        s.observe(0, 5.0, 100, 16);
        s.observe(0, 100.0, 100, 16);
        assert_eq!(s.bucket_counts, vec![1, 1, 1]);
        // Boundary value lands in its bucket (le semantics).
        s.observe(0, 1.0, 100, 16);
        assert_eq!(s.bucket_counts, vec![2, 1, 1]);
    }

    #[test]
    fn negative_counter_deltas_are_clamped() {
        let mut s = Series::new("c".into(), MetricKind::Counter, Vec::new());
        s.add(0, 5.0, 100, 16);
        s.add(1, -3.0, 100, 16);
        s.add(2, f64::NAN, 100, 16);
        assert_eq!(s.total_sum, 5.0);
    }

    #[test]
    fn series_with_base_collects_labelled_variants() {
        let reg = crate::MetricsRegistry::windowed(100, 16);
        let a = reg.counter("tokens{model=\"bert\"}");
        let b = reg.counter("tokens{model=\"gpt2\"}");
        let _other = reg.counter("requests");
        reg.add(a, 0, 1.0);
        reg.add(b, 0, 2.0);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap
            .series_with_base("tokens")
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(names, ["tokens{model=\"bert\"}", "tokens{model=\"gpt2\"}"]);
        assert_eq!(snap.series_with_base("absent").count(), 0);
    }
}
