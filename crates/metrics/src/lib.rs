//! # lumos_metrics — virtual-clock time-series metrics
//!
//! The metrics counterpart to `lumos_trace`: where the tracer answers
//! *what happened when* (discrete events on the virtual clock), this
//! crate answers *how did it evolve* — windowed time series of
//! utilization, occupancy, throughput, and attainment, keyed to the
//! same integer-picosecond clock.
//!
//! A [`MetricsRegistry`] holds three kinds of series:
//!
//! * **gauges** — sampled levels (queue depth, resident streams);
//! * **monotone counters** — accumulations (tokens, weighted busy
//!   picoseconds, joules), with [`MetricsRegistry::add_span`]
//!   distributing an amount over a time span by window overlap — the
//!   primitive behind utilization timelines and energy-rate series;
//! * **fixed-bucket histograms** — distributions (latency, batch
//!   occupancy).
//!
//! Windows are exact integer-ps arithmetic at a configurable width.
//! Series length is bounded: exceeding the bound merges adjacent window
//! pairs and increments an explicit per-series decimation count —
//! coverage is kept at coarser resolution, never silently truncated.
//!
//! Like tracing, metering is opt-in via a plain-data [`MetricsConfig`]
//! knob and **bitwise-invisible to results**: instrumented layers only
//! read simulation state, so reports are identical with metrics on or
//! off, and the knob is excluded from result fingerprints.
//!
//! Snapshots export two byte-deterministic formats —
//! [`export_prometheus`] (text exposition) and [`export_jsonl`] (JSON
//! lines) — plus the [`json`] fragment helpers downstream report
//! serializers reuse.
//!
//! ```
//! use lumos_metrics::{export_jsonl, export_prometheus, MetricsRegistry};
//!
//! // 1 ms windows, at most 64 of them per series.
//! let reg = MetricsRegistry::windowed(1_000_000_000, 64);
//! let util = reg.counter("compute_utilization{class=\"phot_dense\"}");
//! let depth = reg.gauge("queue_depth");
//!
//! // A 1.5 ms busy span starting at t = 0.25 ms spreads across three
//! // windows in proportion to overlap.
//! reg.add_span(util, 250_000_000, 1_500_000_000, 1_500_000_000.0);
//! reg.set(depth, 400_000_000, 3.0);
//!
//! let snap = reg.snapshot();
//! let series = snap.series_named("queue_depth").expect("registered");
//! assert_eq!(series.windows[0].last, 3.0);
//! assert_eq!(export_prometheus(&snap), export_prometheus(&snap));
//! assert!(export_jsonl(&snap).lines().count() >= 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod json;
mod registry;
mod series;

pub use export::{export_jsonl, export_prometheus};
pub use registry::{
    MetricId, MetricsConfig, MetricsRegistry, DEFAULT_MAX_WINDOWS, DEFAULT_WINDOW_PS,
};
pub use series::{MetricKind, MetricsSnapshot, SeriesSnapshot, WindowSample};
