//! Byte-deterministic JSON fragment helpers shared by the metrics
//! exporters and the downstream report/snapshot serializers
//! (`ServeReport::to_json`, `DsePoint::to_json`, `lumos-bench --json`).
//!
//! The rules mirror `lumos_trace`'s Chrome export: strings escape
//! control characters, finite floats use Rust's deterministic
//! shortest-roundtrip `Display`, and non-finite floats render as
//! `null` (JSON has no NaN/inf). Nothing here reads the wall clock or
//! iterates an unordered map, so callers that feed deterministic data
//! get byte-identical documents across reruns.

/// Escapes `s` for inclusion inside a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders `s` as a quoted JSON string literal.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Renders a float as a JSON number: finite values via Rust's
/// shortest-roundtrip `Display`, non-finite values as `null`.
pub fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

/// Renders a float slice as a JSON array of [`num`] values.
pub fn num_array(xs: &[f64]) -> String {
    let items: Vec<String> = xs.iter().map(|x| num(*x)).collect();
    format!("[{}]", items.join(","))
}

/// Renders an unsigned slice as a JSON array.
pub fn u64_array(xs: &[u64]) -> String {
    let items: Vec<String> = xs.iter().map(|x| format!("{x}")).collect();
    format!("[{}]", items.join(","))
}

/// Builds a JSON object from pre-rendered `(key, value-fragment)`
/// pairs, in the given (stable) order.
pub fn object(fields: &[(&str, String)]) -> String {
    let items: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", escape(k), v))
        .collect();
    format!("{{{}}}", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_controls_quotes_and_backslashes() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
        assert_eq!(string("λ"), "\"λ\"");
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num_array(&[0.25, f64::NAN]), "[0.25,null]");
    }

    #[test]
    fn object_preserves_field_order() {
        let o = object(&[("b", "1".to_owned()), ("a", string("x"))]);
        assert_eq!(o, "{\"b\":1,\"a\":\"x\"}");
    }
}
