//! The [`MetricsRegistry`] handle the instrumented layers record
//! through, plus the plain-data [`MetricsConfig`] knob embedded in run
//! configurations — the exact shape of `lumos_trace`'s
//! `TraceConfig` / `Tracer` pair, so the two observability planes plumb
//! identically.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use crate::series::{MetricKind, MetricsSnapshot, Series};

/// Default window width: 1 ms of virtual time (10⁹ ps) — fine enough
/// to resolve serving dynamics over the example horizons, coarse
/// enough that a 0.5 s horizon stays at full resolution.
pub const DEFAULT_WINDOW_PS: u64 = 1_000_000_000;

/// Default per-series window bound before decimation kicks in.
pub const DEFAULT_MAX_WINDOWS: usize = 512;

/// The metrics knob a run configuration carries (e.g.
/// `ServeConfig::metrics` in `lumos_serve`): plain comparable data, not
/// a live handle, so configurations stay `Clone + PartialEq` and
/// fingerprintable. Build the live [`MetricsRegistry`] with
/// [`MetricsConfig::registry`].
///
/// Metering never changes what a simulation computes — reports are
/// bit-identical with metrics on or off — so the knob is excluded from
/// result fingerprints, exactly like the tracing knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Whether the run records samples at all.
    pub enabled: bool,
    /// Base window width on the virtual clock, integer picoseconds.
    pub window_ps: u64,
    /// Per-series window bound; exceeding it triggers explicit
    /// pairwise decimation, never silent truncation.
    pub max_windows: usize,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig::off()
    }
}

impl MetricsConfig {
    /// Metrics disabled (the default everywhere).
    pub fn off() -> Self {
        MetricsConfig {
            enabled: false,
            window_ps: DEFAULT_WINDOW_PS,
            max_windows: DEFAULT_MAX_WINDOWS,
        }
    }

    /// Metrics enabled at the default window width and bound.
    pub fn enabled() -> Self {
        MetricsConfig::windowed(DEFAULT_WINDOW_PS, DEFAULT_MAX_WINDOWS)
    }

    /// Metrics enabled with an explicit window width and series bound.
    pub fn windowed(window_ps: u64, max_windows: usize) -> Self {
        MetricsConfig {
            enabled: true,
            window_ps,
            max_windows,
        }
    }

    /// Builds the live handle this configuration describes:
    /// [`MetricsRegistry::off`] when disabled, a windowed registry
    /// otherwise.
    pub fn registry(&self) -> MetricsRegistry {
        if self.enabled {
            MetricsRegistry::windowed(self.window_ps, self.max_windows)
        } else {
            MetricsRegistry::off()
        }
    }
}

/// Opaque handle to one registered series; obtained from the
/// `register_*` methods and passed back to the record methods. The
/// disabled registry hands out an inert id, so hot paths hold plain
/// `MetricId`s unconditionally and pay one branch per record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(usize);

impl MetricId {
    const INERT: MetricId = MetricId(usize::MAX);
}

struct Inner {
    window_ps: u64,
    max_windows: usize,
    series: Vec<Series>,
    by_name: BTreeMap<String, usize>,
}

/// A cheap-to-clone registry of windowed time series keyed to the
/// virtual clock.
///
/// A disabled registry ([`MetricsRegistry::off`], the default) holds no
/// state at all: every record method is a single branch, mirroring
/// `lumos_trace::Tracer`. Registration is idempotent by name — series
/// names carry optional `{label="value"}` suffixes so per-model /
/// per-class series stay distinct.
///
/// Determinism: windows are pure integer-ps arithmetic, registration
/// and emission order are the caller's, and snapshots sort series by
/// name — so for a deterministic caller the snapshot (and both
/// exports) are byte-identical across reruns.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("enabled", &self.enabled())
            .field("series", &self.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// The disabled registry: records nothing, costs one branch per
    /// call.
    pub fn off() -> Self {
        MetricsRegistry { inner: None }
    }

    /// An enabled registry at the default window width and bound.
    pub fn with_defaults() -> Self {
        MetricsRegistry::windowed(DEFAULT_WINDOW_PS, DEFAULT_MAX_WINDOWS)
    }

    /// An enabled registry with an explicit window width (clamped to
    /// ≥ 1 ps) and per-series bound (clamped to ≥ 2 so pairwise
    /// decimation can always make progress).
    pub fn windowed(window_ps: u64, max_windows: usize) -> Self {
        MetricsRegistry {
            inner: Some(Arc::new(Mutex::new(Inner {
                window_ps: window_ps.max(1),
                max_windows: max_windows.max(2),
                series: Vec::new(),
                by_name: BTreeMap::new(),
            }))),
        }
    }

    /// Whether records are kept. Instrumentation sites should guard any
    /// expensive name construction behind this.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.lock().expect("metrics registry lock").series.len(),
            None => 0,
        }
    }

    /// `true` when no series is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn register(&self, name: &str, kind: MetricKind, bounds: Vec<f64>) -> MetricId {
        let Some(inner) = &self.inner else {
            return MetricId::INERT;
        };
        let mut inner = inner.lock().expect("metrics registry lock");
        if let Some(&idx) = inner.by_name.get(name) {
            debug_assert_eq!(
                inner.series[idx].kind, kind,
                "metric {name:?} re-registered with a different kind"
            );
            return MetricId(idx);
        }
        let idx = inner.series.len();
        inner
            .series
            .push(Series::new(name.to_owned(), kind, bounds));
        inner.by_name.insert(name.to_owned(), idx);
        MetricId(idx)
    }

    /// Registers (or finds) a gauge series.
    pub fn gauge(&self, name: &str) -> MetricId {
        self.register(name, MetricKind::Gauge, Vec::new())
    }

    /// Registers (or finds) a monotone counter series.
    pub fn counter(&self, name: &str) -> MetricId {
        self.register(name, MetricKind::Counter, Vec::new())
    }

    /// Registers (or finds) a fixed-bucket histogram. Bounds are
    /// sanitized to finite, ascending, deduplicated upper bounds; an
    /// implicit `+Inf` overflow bucket always follows.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> MetricId {
        let mut clean: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        clean.sort_by(|a, b| a.partial_cmp(b).expect("finite bounds compare"));
        clean.dedup();
        self.register(name, MetricKind::Histogram, clean)
    }

    fn with_series(&self, id: MetricId, f: impl FnOnce(&mut Series, u64, usize)) {
        let Some(inner) = &self.inner else { return };
        let mut inner = inner.lock().expect("metrics registry lock");
        let (window_ps, max_windows) = (inner.window_ps, inner.max_windows);
        if let Some(series) = inner.series.get_mut(id.0) {
            f(series, window_ps, max_windows);
        }
    }

    /// Samples a gauge level at `ts_ps`.
    pub fn set(&self, id: MetricId, ts_ps: u64, v: f64) {
        self.with_series(id, |s, w, m| s.set(ts_ps, v, w, m));
    }

    /// Adds a (non-negative) increment to a counter at `ts_ps`.
    pub fn add(&self, id: MetricId, ts_ps: u64, delta: f64) {
        self.with_series(id, |s, w, m| s.add(ts_ps, delta, w, m));
    }

    /// Distributes `amount` over the span `[start_ps, start_ps +
    /// dur_ps)` in proportion to window overlap — utilization timelines
    /// (`amount` = weighted busy ps) and energy rates (`amount` =
    /// joules) in one primitive.
    pub fn add_span(&self, id: MetricId, start_ps: u64, dur_ps: u64, amount: f64) {
        self.with_series(id, |s, w, m| s.add_span(start_ps, dur_ps, amount, w, m));
    }

    /// Records a histogram observation at `ts_ps`.
    pub fn observe(&self, id: MetricId, ts_ps: u64, v: f64) {
        self.with_series(id, |s, w, m| s.observe(ts_ps, v, w, m));
    }

    /// Takes an immutable snapshot of every series, sorted by name.
    /// The disabled registry snapshots as empty.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot {
                window_ps: DEFAULT_WINDOW_PS,
                max_windows: DEFAULT_MAX_WINDOWS,
                series: Vec::new(),
            };
        };
        let inner = inner.lock().expect("metrics registry lock");
        let mut series: Vec<_> = inner
            .series
            .iter()
            .map(|s| s.snapshot(inner.window_ps))
            .collect();
        series.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            window_ps: inner.window_ps,
            max_windows: inner.max_windows,
            series,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_registry_is_inert() {
        let r = MetricsRegistry::off();
        assert!(!r.enabled());
        let g = r.gauge("g");
        let c = r.counter("c");
        let h = r.histogram("h", &[1.0]);
        r.set(g, 0, 1.0);
        r.add(c, 0, 1.0);
        r.add_span(c, 0, 100, 1.0);
        r.observe(h, 0, 1.0);
        assert!(r.is_empty());
        assert!(r.snapshot().series.is_empty());
    }

    #[test]
    fn registration_is_idempotent_by_name() {
        let r = MetricsRegistry::with_defaults();
        let a = r.counter("tokens");
        let b = r.counter("tokens");
        assert_eq!(a, b);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn clones_share_state_and_snapshot_sorts_by_name() {
        let r = MetricsRegistry::windowed(100, 8);
        let s = r.clone();
        let z = r.gauge("z");
        let a = s.counter("a");
        r.set(z, 50, 2.0);
        s.add(a, 150, 1.0);
        let snap = r.snapshot();
        assert_eq!(snap.series.len(), 2);
        assert_eq!(snap.series[0].name, "a");
        assert_eq!(snap.series[1].name, "z");
        assert_eq!(snap.series[1].windows[0].start_ps, 0);
        assert_eq!(snap.series[0].windows[0].start_ps, 100);
    }

    #[test]
    fn config_round_trip() {
        assert_eq!(MetricsConfig::default(), MetricsConfig::off());
        assert!(!MetricsConfig::off().registry().enabled());
        let cfg = MetricsConfig::windowed(250, 16);
        assert!(cfg.enabled);
        let r = cfg.registry();
        assert!(r.enabled());
        assert_eq!(r.snapshot().window_ps, 250);
        assert_eq!(r.snapshot().max_windows, 16);
        assert_eq!(MetricsConfig::enabled().window_ps, DEFAULT_WINDOW_PS);
    }

    #[test]
    fn histogram_bounds_are_sanitized() {
        let r = MetricsRegistry::with_defaults();
        let h = r.histogram("lat", &[10.0, 1.0, f64::INFINITY, 1.0]);
        r.observe(h, 0, 0.5);
        let snap = r.snapshot();
        assert_eq!(snap.series[0].bounds, vec![1.0, 10.0]);
        assert_eq!(snap.series[0].bucket_counts, vec![1, 0, 0]);
    }
}
